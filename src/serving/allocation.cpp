#include "serving/allocation.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/log.hpp"
#include "solver/simplex.hpp"

namespace loki::serving {

namespace {

/// A path through the augmented graph at config granularity: position i on
/// the root->sink task path uses feasible-config index cfg_idx[i].
struct ConfigPath {
  std::vector<int> tasks;
  std::vector<int> cfg_idx;
};

/// Odometer enumeration of config paths along `tasks`; empty when some task
/// on the path has no feasible config.
std::vector<ConfigPath> enumerate_config_paths(const std::vector<int>& tasks,
                                               const ConfigTable& configs) {
  std::vector<ConfigPath> out;
  for (int t : tasks) {
    if (configs[static_cast<std::size_t>(t)].empty()) return out;
  }
  std::vector<int> choice(tasks.size(), 0);
  for (;;) {
    out.push_back(ConfigPath{tasks, choice});
    int pos = static_cast<int>(tasks.size()) - 1;
    while (pos >= 0) {
      const int limit = static_cast<int>(
          configs[static_cast<std::size_t>(tasks[static_cast<std::size_t>(pos)])]
              .size());
      if (++choice[static_cast<std::size_t>(pos)] < limit) break;
      choice[static_cast<std::size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  return out;
}

double config_path_accuracy(const pipeline::PipelineGraph& g,
                            const ConfigTable& configs, const ConfigPath& p) {
  double acc = 1.0;
  for (std::size_t i = 0; i < p.tasks.size(); ++i) {
    const auto& vc = configs[static_cast<std::size_t>(p.tasks[i])]
                            [static_cast<std::size_t>(p.cfg_idx[i])];
    acc *= g.task(p.tasks[i]).catalog.at(vc.variant).accuracy;
  }
  return acc;
}

/// m(p, pos): requests reaching position pos per request entering the root.
double config_path_multiplier(const pipeline::PipelineGraph& g,
                              const ConfigTable& configs,
                              const pipeline::MultFactorTable& mult,
                              const ConfigPath& p, std::size_t pos) {
  double m = 1.0;
  for (std::size_t i = 0; i < pos; ++i) {
    const int task = p.tasks[i];
    const auto& vc = configs[static_cast<std::size_t>(task)]
                            [static_cast<std::size_t>(p.cfg_idx[i])];
    m *= mult.at(static_cast<std::size_t>(task))
             .at(static_cast<std::size_t>(vc.variant)) *
         g.branch_ratio(task, p.tasks[i + 1]);
  }
  return m;
}

bool config_path_extends(const ConfigPath& p, const ConfigPath& prefix) {
  if (prefix.tasks.size() > p.tasks.size()) return false;
  for (std::size_t i = 0; i < prefix.tasks.size(); ++i) {
    if (p.tasks[i] != prefix.tasks[i] || p.cfg_idx[i] != prefix.cfg_idx[i]) {
      return false;
    }
  }
  return true;
}

/// Load arriving at each task for a pure per-task config choice.
std::vector<double> loads_for_choice(const pipeline::PipelineGraph& g,
                                     const ConfigTable& configs,
                                     const pipeline::MultFactorTable& mult,
                                     const std::vector<int>& cfg_idx,
                                     double demand) {
  std::vector<double> load(static_cast<std::size_t>(g.num_tasks()), 0.0);
  for (int t : g.topological_order()) {
    if (g.parent(t) == -1) load[static_cast<std::size_t>(t)] = demand;
    const auto& vc = configs[static_cast<std::size_t>(t)]
                            [static_cast<std::size_t>(
                                cfg_idx[static_cast<std::size_t>(t)])];
    const double r = mult.at(static_cast<std::size_t>(t))
                         .at(static_cast<std::size_t>(vc.variant));
    for (int c : g.children(t)) {
      load[static_cast<std::size_t>(c)] =
          load[static_cast<std::size_t>(t)] * r * g.branch_ratio(t, c);
    }
  }
  return load;
}

double choice_accuracy(const pipeline::PipelineGraph& g,
                       const ConfigTable& configs,
                       const std::vector<int>& cfg_idx) {
  const auto sinks = g.sinks();
  double sum = 0.0;
  for (int s : sinks) {
    double acc = 1.0;
    for (int t : g.task_path_to(s)) {
      const auto& vc = configs[static_cast<std::size_t>(t)]
                              [static_cast<std::size_t>(
                                  cfg_idx[static_cast<std::size_t>(t)])];
      acc *= g.task(t).catalog.at(vc.variant).accuracy;
    }
    sum += acc;
  }
  return sum / static_cast<double>(sinks.size());
}

std::vector<int> replicas_for_choice(const pipeline::PipelineGraph& g,
                                     const ConfigTable& configs,
                                     const std::vector<int>& cfg_idx,
                                     const std::vector<double>& load) {
  std::vector<int> reps(static_cast<std::size_t>(g.num_tasks()), 1);
  for (int t = 0; t < g.num_tasks(); ++t) {
    const auto& vc = configs[static_cast<std::size_t>(t)]
                            [static_cast<std::size_t>(
                                cfg_idx[static_cast<std::size_t>(t)])];
    reps[static_cast<std::size_t>(t)] = std::max(
        1, static_cast<int>(std::ceil(load[static_cast<std::size_t>(t)] /
                                          vc.throughput_qps -
                                      1e-9)));
  }
  return reps;
}

/// Configs of one task ordered by accuracy descending (tie: throughput).
std::vector<int> accuracy_order(const pipeline::PipelineGraph& g, int task,
                                const std::vector<VariantConfig>& task_configs) {
  std::vector<int> order(task_configs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& va = task_configs[static_cast<std::size_t>(a)];
    const auto& vb = task_configs[static_cast<std::size_t>(b)];
    const double aa = g.task(task).catalog.at(va.variant).accuracy;
    const double ab = g.task(task).catalog.at(vb.variant).accuracy;
    if (aa != ab) return aa > ab;
    return va.throughput_qps > vb.throughput_qps;
  });
  return order;
}

struct GreedyChoice {
  bool feasible = false;
  std::vector<int> cfg_idx;   // per task, index into configs[task]
  std::vector<int> replicas;  // per task
  int servers = 0;
  double accuracy = 1.0;      // end-to-end mean over sinks
};

/// Greedy single-config-per-task assignment for one split: start at maximum
/// accuracy; while the cluster is exceeded, degrade the task with the best
/// server-savings per accuracy loss.
GreedyChoice greedy_choice(const pipeline::PipelineGraph& g,
                           const ConfigTable& configs,
                           const pipeline::MultFactorTable& mult,
                           double demand, int cluster_size,
                           bool allow_degrade) {
  GreedyChoice out;
  const int nt = g.num_tasks();
  std::vector<std::vector<int>> order(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    if (configs[static_cast<std::size_t>(t)].empty()) return out;
    order[static_cast<std::size_t>(t)] =
        accuracy_order(g, t, configs[static_cast<std::size_t>(t)]);
  }
  std::vector<int> rank(static_cast<std::size_t>(nt), 0);
  auto cfg_of = [&](const std::vector<int>& rk) {
    std::vector<int> cfg(static_cast<std::size_t>(nt));
    for (int t = 0; t < nt; ++t) {
      cfg[static_cast<std::size_t>(t)] =
          order[static_cast<std::size_t>(t)]
               [static_cast<std::size_t>(rk[static_cast<std::size_t>(t)])];
    }
    return cfg;
  };
  auto servers_of = [&](const std::vector<int>& rk,
                        std::vector<int>* reps_out) {
    const auto cfg = cfg_of(rk);
    const auto load = loads_for_choice(g, configs, mult, cfg, demand);
    const auto reps = replicas_for_choice(g, configs, cfg, load);
    int total = 0;
    for (int r : reps) total += r;
    if (reps_out) *reps_out = reps;
    return total;
  };

  int servers = servers_of(rank, nullptr);
  while (servers > cluster_size) {
    if (!allow_degrade) return out;
    int best_task = -1;
    double best_score = -std::numeric_limits<double>::infinity();
    int best_servers = servers;
    const double cur_acc = choice_accuracy(g, configs, cfg_of(rank));
    for (int t = 0; t < nt; ++t) {
      if (rank[static_cast<std::size_t>(t)] + 1 >=
          static_cast<int>(order[static_cast<std::size_t>(t)].size())) {
        continue;
      }
      auto trial = rank;
      ++trial[static_cast<std::size_t>(t)];
      const int trial_servers = servers_of(trial, nullptr);
      const double trial_acc = choice_accuracy(g, configs, cfg_of(trial));
      const double d_servers = static_cast<double>(servers - trial_servers);
      const double d_acc = std::max(1e-12, cur_acc - trial_acc);
      const double score = d_servers / d_acc;
      if (score > best_score) {
        best_score = score;
        best_task = t;
        best_servers = trial_servers;
      }
    }
    if (best_task < 0) return out;  // fully degraded and still over budget
    ++rank[static_cast<std::size_t>(best_task)];
    servers = best_servers;
  }
  out.feasible = true;
  out.cfg_idx = cfg_of(rank);
  out.servers = servers_of(rank, &out.replicas);
  out.accuracy = choice_accuracy(g, configs, out.cfg_idx);
  return out;
}

void compositions_rec(int total, int parts, std::vector<int>& cur,
                      std::vector<std::vector<int>>& out) {
  if (parts == 1) {
    cur.push_back(total);
    out.push_back(cur);
    cur.pop_back();
    return;
  }
  for (int first = 1; first <= total - (parts - 1); ++first) {
    cur.push_back(first);
    compositions_rec(total - first, parts - 1, cur, out);
    cur.pop_back();
  }
}

/// Builds the plan skeleton for a pure greedy choice.
AllocationPlan plan_from_choice(const pipeline::PipelineGraph& g,
                                const ConfigTable& configs,
                                const GreedyChoice& gc, double demand_qps) {
  AllocationPlan plan;
  plan.demand_qps = demand_qps;
  plan.expected_accuracy = gc.accuracy;
  plan.servers_used = gc.servers;
  plan.feasible = true;
  for (int t = 0; t < g.num_tasks(); ++t) {
    const auto& vc = configs[static_cast<std::size_t>(t)]
                            [static_cast<std::size_t>(
                                gc.cfg_idx[static_cast<std::size_t>(t)])];
    plan.instances.push_back(
        {t, vc.variant, vc.batch, gc.replicas[static_cast<std::size_t>(t)]});
    plan.latency_budget_s[{t, vc.variant}] = 2.0 * vc.latency_s;
  }
  for (int s : g.sinks()) {
    pipeline::VariantPath vp;
    vp.sink = s;
    vp.tasks = g.task_path_to(s);
    for (int t : vp.tasks) {
      vp.variants.push_back(configs[static_cast<std::size_t>(t)]
                                   [static_cast<std::size_t>(
                                       gc.cfg_idx[static_cast<std::size_t>(t)])]
                                       .variant);
    }
    plan.flows.push_back({std::move(vp), 1.0});
  }
  return plan;
}

}  // namespace

solver::MilpOptions AllocatorConfig::default_milp_options() {
  solver::MilpOptions o;
  // The accuracy objective lives in [0, 1]; differences below 5e-4 (0.05%
  // system accuracy) are immaterial, and the coarser gap prunes the search
  // hard enough to keep a full 3-step allocation within the paper's ~500 ms
  // Gurobi budget (§6.5).
  o.gap_tol = 5e-4;
  // Truncation is node-driven (deterministic); the wall-clock limit is a
  // safety net only, so results do not depend on machine load. The greedy
  // warm start is already near-optimal; the node budget buys improvement
  // attempts, not an optimality proof (the LP bound of this formulation
  // stays fractionally above the best integer point).
  o.max_nodes = 120;
  o.time_limit_s = 5.0;
  // Allocation LPs have ~150 rows and solve in a few hundred pivots; a
  // degenerate node crawling through Bland's rule must not eat the whole
  // budget (a capped node is dropped conservatively).
  o.lp.max_iterations = 3000;
  // Presolve: row/column elimination and fixed-variable substitution pay
  // for themselves; implied-bound tightening and equilibration are OFF
  // here — they reshape the node LPs in ways that make the bounded dual
  // warm repairs (the dominant per-node cost) measurably slower on these
  // models, even though they help one-shot cold solves. Measured on the
  // demand {100, 900, 5000} workload: elim+fix 5.2k total pivots vs 6.1k
  // with tightening+scaling on.
  o.presolve_options.tighten_bounds = false;
  o.presolve_options.scale = false;
  return o;
}

ProfileTable build_profile_table(const pipeline::PipelineGraph& g,
                                 const profile::ModelProfiler& profiler) {
  ProfileTable table(static_cast<std::size_t>(g.num_tasks()));
  for (int t = 0; t < g.num_tasks(); ++t) {
    table[static_cast<std::size_t>(t)] =
        profiler.profile_catalog(g.task(t).catalog);
  }
  return table;
}

std::vector<std::vector<double>> budget_splits(const AllocatorConfig& cfg,
                                               const pipeline::PipelineGraph& g) {
  const int levels = g.max_depth() + 1;
  std::vector<std::vector<double>> out;
  if (levels == 1) {
    out.push_back({1.0});
    return out;
  }
  const int grid = std::max(cfg.budget_grid, levels);
  std::vector<std::vector<int>> comps;
  std::vector<int> cur;
  compositions_rec(grid, levels, cur, comps);
  out.reserve(comps.size());
  for (const auto& comp : comps) {
    std::vector<double> w;
    w.reserve(comp.size());
    for (int part : comp) {
      w.push_back(static_cast<double>(part) / static_cast<double>(grid));
    }
    out.push_back(std::move(w));
  }
  return out;
}

std::vector<double> task_budgets_for_split(
    const AllocatorConfig& cfg, const pipeline::PipelineGraph& g,
    const std::vector<double>& level_weights) {
  std::vector<double> budgets(static_cast<std::size_t>(g.num_tasks()),
                              std::numeric_limits<double>::infinity());
  for (int s : g.sinks()) {
    const auto path = g.task_path_to(s);
    const int hops = static_cast<int>(path.size()) + 1;  // fe -> ... -> fe
    const double total = cfg.slo_s * cfg.queue_factor -
                         cfg.comm_latency_s * static_cast<double>(hops);
    LOKI_CHECK_MSG(total > 0.0, "SLO too small for communication latency");
    double denom = 0.0;
    for (std::size_t i = 0; i < path.size(); ++i) denom += level_weights.at(i);
    for (std::size_t i = 0; i < path.size(); ++i) {
      auto& b = budgets[static_cast<std::size_t>(path[i])];
      b = std::min(b, total * level_weights.at(i) / denom);
    }
  }
  return budgets;
}

/// One task's slice of feasible_configs; also the recompute unit of
/// MilpAllocator::update_profile's selective invalidation.
static std::vector<VariantConfig> task_feasible_configs(
    const pipeline::PipelineGraph& g, const ProfileTable& profiles, int task,
    double budget, double utilization_target) {
  std::vector<VariantConfig> out;
  for (int k = 0; k < g.task(task).catalog.size(); ++k) {
    const auto& prof =
        profiles[static_cast<std::size_t>(task)][static_cast<std::size_t>(k)];
    const int batch = prof.best_batch_within(budget);
    if (batch < 0) continue;
    VariantConfig vc;
    vc.variant = k;
    vc.batch = batch;
    vc.throughput_qps = prof.throughput_for(batch) * utilization_target;
    vc.latency_s = prof.latency_for(batch);
    out.push_back(vc);
  }
  return out;
}

ConfigTable feasible_configs(const pipeline::PipelineGraph& g,
                             const ProfileTable& profiles,
                             const std::vector<double>& task_budgets,
                             double utilization_target) {
  LOKI_CHECK(utilization_target > 0.0 && utilization_target <= 1.0);
  ConfigTable configs(static_cast<std::size_t>(g.num_tasks()));
  for (int t = 0; t < g.num_tasks(); ++t) {
    configs[static_cast<std::size_t>(t)] = task_feasible_configs(
        g, profiles, t, task_budgets[static_cast<std::size_t>(t)],
        utilization_target);
  }
  return configs;
}

// ---------------------------------------------------------------------------
// GreedyAllocator
// ---------------------------------------------------------------------------

GreedyAllocator::GreedyAllocator(AllocatorConfig cfg,
                                 const pipeline::PipelineGraph* graph,
                                 ProfileTable profiles)
    : cfg_(cfg), graph_(graph), profiles_(std::move(profiles)) {
  LOKI_CHECK(graph_ != nullptr);
  LOKI_CHECK(cfg_.cluster_size >= graph_->num_tasks());
}

const std::vector<GreedyAllocator::SplitConfigs>&
GreedyAllocator::split_configs() {
  if (!split_configs_ready_) {
    splits_ = budget_splits(cfg_, *graph_);
    split_configs_.reserve(splits_.size());
    for (const auto& split : splits_) {
      SplitConfigs sc;
      sc.budgets = task_budgets_for_split(cfg_, *graph_, split);
      sc.configs = feasible_configs(*graph_, profiles_, sc.budgets,
                                    cfg_.utilization_target);
      split_configs_.push_back(std::move(sc));
    }
    split_configs_ready_ = true;
  }
  return split_configs_;
}

PlanResult GreedyAllocator::plan(const PlanRequest& request) {
  const auto t0 = std::chrono::steady_clock::now();
  // Failure re-plans shrink placement capacity to the surviving workers.
  ScopedClusterCapacity capacity(&cfg_.cluster_size, request,
                                 graph_->num_tasks());
  const auto& g = *graph_;
  // Request shape invariant: observed arrival rates are either absent
  // (planner probes) or one entry per task — never a partial vector.
  LOKI_CHECK_MSG(request.task_arrivals_qps.empty() ||
                     static_cast<int>(request.task_arrivals_qps.size()) ==
                         g.num_tasks(),
                 "task_arrivals_qps has " << request.task_arrivals_qps.size()
                                          << " entries for " << g.num_tasks()
                                          << " tasks");
  const double demand_qps = request.demand_qps;
  const auto& mult = request.mult;
  const auto& per_split = split_configs();

  PlanResult out;
  out.epoch = request.epoch;
  StepSolve step;
  step.step = "greedy";
  step.splits_attempted = static_cast<int>(per_split.size());
  step.selected = true;

  auto finish = [&](AllocationPlan plan) {
    plan.solve_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    step.wall_s = plan.solve_time_s;
    out.steps.push_back(step);
    out.plan = std::move(plan);
    return std::move(out);
  };

  std::optional<AllocationPlan> best;
  for (const auto& sc : per_split) {
    const auto& configs = sc.configs;
    const auto gc = greedy_choice(g, configs, mult, demand_qps,
                                  cfg_.cluster_size, /*allow_degrade=*/true);
    if (!gc.feasible) continue;
    ++step.splits_feasible;
    AllocationPlan plan = plan_from_choice(g, configs, gc, demand_qps);
    plan.mode = gc.accuracy >= 1.0 - 1e-12 ? ScalingMode::kHardware
                                           : ScalingMode::kAccuracy;
    if (!best || plan.expected_accuracy > best->expected_accuracy ||
        (plan.expected_accuracy == best->expected_accuracy &&
         plan.servers_used < best->servers_used)) {
      best = std::move(plan);
    }
  }
  if (best) return finish(std::move(*best));

  // Overload fallback: the cheapest feasible configuration; serve what fits
  // and shed the rest at the frontend.
  for (const auto& sc : per_split) {
    const auto& configs = sc.configs;
    bool ok = true;
    std::vector<int> cheap(static_cast<std::size_t>(g.num_tasks()), 0);
    for (int t = 0; t < g.num_tasks() && ok; ++t) {
      const auto& cs = configs[static_cast<std::size_t>(t)];
      if (cs.empty()) {
        ok = false;
        break;
      }
      int bestj = 0;
      for (std::size_t j = 1; j < cs.size(); ++j) {
        if (cs[j].throughput_qps >
            cs[static_cast<std::size_t>(bestj)].throughput_qps) {
          bestj = static_cast<int>(j);
        }
      }
      cheap[static_cast<std::size_t>(t)] = bestj;
    }
    if (!ok) continue;

    const auto unit_load = loads_for_choice(g, configs, mult, cheap, 1.0);
    double unit_servers = 0.0;
    for (int t = 0; t < g.num_tasks(); ++t) {
      unit_servers += unit_load[static_cast<std::size_t>(t)] /
                      configs[static_cast<std::size_t>(t)]
                             [static_cast<std::size_t>(
                                 cheap[static_cast<std::size_t>(t)])]
                                 .throughput_qps;
    }
    const double capacity_qps = static_cast<double>(cfg_.cluster_size) /
                                std::max(unit_servers, 1e-12);
    GreedyChoice gc;
    gc.feasible = true;
    gc.cfg_idx = cheap;
    double served =
        std::min(1.0, capacity_qps / std::max(demand_qps, 1e-12));
    const auto load =
        loads_for_choice(g, configs, mult, cheap, demand_qps * served);
    gc.replicas = replicas_for_choice(g, configs, cheap, load);
    int total = 0;
    for (int r : gc.replicas) total += r;
    while (total > cfg_.cluster_size) {
      int argmax = 0;
      for (int t = 1; t < g.num_tasks(); ++t) {
        if (gc.replicas[static_cast<std::size_t>(t)] >
            gc.replicas[static_cast<std::size_t>(argmax)]) {
          argmax = t;
        }
      }
      LOKI_CHECK(gc.replicas[static_cast<std::size_t>(argmax)] > 1);
      --gc.replicas[static_cast<std::size_t>(argmax)];
      --total;
    }
    gc.servers = total;
    gc.accuracy = choice_accuracy(g, configs, cheap);
    // Clipping may have removed capacity: recompute the admitted fraction
    // against the final replica counts so no task is overloaded.
    const auto unit = loads_for_choice(g, configs, mult, cheap, 1.0);
    for (int t = 0; t < g.num_tasks(); ++t) {
      const auto& vc = configs[static_cast<std::size_t>(t)]
                              [static_cast<std::size_t>(
                                  cheap[static_cast<std::size_t>(t)])];
      const double cap = gc.replicas[static_cast<std::size_t>(t)] *
                         vc.throughput_qps;
      const double need = unit[static_cast<std::size_t>(t)] * demand_qps;
      if (need > 1e-12) served = std::min(served, cap / need);
    }
    AllocationPlan plan = plan_from_choice(g, configs, gc, demand_qps);
    plan.mode = ScalingMode::kOverload;
    plan.served_fraction = served;
    ++step.splits_feasible;
    return finish(std::move(plan));
  }
  LOKI_CHECK_MSG(false, "SLO infeasible: no variant fits any budget split");
  return {};
}

// ---------------------------------------------------------------------------
// MilpAllocator
// ---------------------------------------------------------------------------

/// See the declaration in allocation.hpp for the ownership story. Split
/// caches depend only on construction inputs (cfg, graph, profiles) and are
/// immutable once built; the per-(split, step) StepCache entries carry the
/// mutable cross-epoch solver state and are each touched by exactly one
/// thread of the split-parallel solve.
struct MilpAllocator::EpochContext {
  /// Cross-epoch solver state for one (budget split, allocation step).
  struct StepCache {
    /// The exact model (and greedy warm incumbent) of the last cold build;
    /// the warm-start gate requires the new model to equal it bitwise.
    bool has_model = false;
    solver::LpProblem model;
    std::optional<std::vector<double>> warm;
    /// Persistent simplex context + post-root basis (solver/milp.hpp).
    solver::ResolveSession session;
    /// Memoized "this model yields no plan" verdict: re-proving the same
    /// infeasibility every epoch is pure waste, and the solver is
    /// deterministic, so the cached verdict is exact.
    bool last_no_plan = false;
  };
  /// Cross-epoch memo for the overload (served-fraction) step. Its
  /// two-stage solve shares one session and stage B mutates the model in
  /// place, so the generic StepCache cannot snapshot "the" model; instead
  /// the stage-A model (captured with its objective set, before stage-B
  /// mutation) keys a memo of the step's final result. A steady overload
  /// epoch — same demand, mult and previous-plan variants — returns the
  /// cached result without touching the solver (reported as an
  /// epoch_cache_skip); otherwise the persistent session gives the opt-in
  /// near tier a basis to crash-start from, and the cold path rebuilds it
  /// exactly as a transient session would (bit-identical pivots).
  struct OverloadCache {
    bool has_model = false;
    solver::LpProblem model;                       // stage-A lp
    std::vector<std::vector<bool>> prev_variants;  // continuity key
    bool has_result = false;
    MilpResult result;
    solver::ResolveSession session;
  };
  struct SplitCache {
    std::vector<double> budgets;
    ConfigTable configs;     // all variants (accuracy + overload steps)
    ConfigTable configs_hw;  // most accurate variant only (hardware step)
    bool feasible = false;   // every task has >= 1 feasible config
    bool feasible_hw = false;
    std::vector<std::vector<ConfigPath>> sink_paths;
    std::vector<std::vector<ConfigPath>> sink_paths_hw;
    StepCache steps[2];  // [0] hardware, [1] accuracy
    OverloadCache overload;
  };
  std::vector<std::vector<double>> splits;
  std::vector<SplitCache> per_split;
};

MilpAllocator::MilpAllocator(AllocatorConfig cfg,
                             const pipeline::PipelineGraph* graph,
                             ProfileTable profiles)
    : cfg_(cfg), graph_(graph), profiles_(std::move(profiles)) {
  LOKI_CHECK(graph_ != nullptr);
  LOKI_CHECK_MSG(cfg_.cluster_size >= graph_->num_tasks(),
                 "cluster must fit at least one instance per task");
}

MilpAllocator::~MilpAllocator() = default;

void MilpAllocator::reset_epoch_context() { epoch_.reset(); }

namespace {

bool all_tasks_nonempty(const pipeline::PipelineGraph& g,
                        const ConfigTable& configs) {
  for (int t = 0; t < g.num_tasks(); ++t) {
    if (configs[static_cast<std::size_t>(t)].empty()) return false;
  }
  return true;
}

std::vector<std::vector<ConfigPath>> build_sink_paths(
    const pipeline::PipelineGraph& g, const ConfigTable& configs) {
  std::vector<std::vector<ConfigPath>> paths;
  const auto sinks = g.sinks();
  paths.reserve(sinks.size());
  for (int s : sinks) {
    paths.push_back(enumerate_config_paths(g.task_path_to(s), configs));
    LOKI_CHECK(!paths.back().empty());
  }
  return paths;
}

/// The hardware-scaling view of one task's configs: only its most accurate
/// variant (Eq. 8-10).
std::vector<VariantConfig> hardware_view(const pipeline::PipelineGraph& g,
                                         int task,
                                         const std::vector<VariantConfig>& cs) {
  const int best_variant = g.task(task).catalog.most_accurate();
  std::vector<VariantConfig> out;
  for (const auto& vc : cs) {
    if (vc.variant == best_variant) out.push_back(vc);
  }
  return out;
}

}  // namespace

void MilpAllocator::ensure_epoch_context() {
  if (epoch_) return;
  const auto& g = *graph_;
  auto ctx = std::make_unique<EpochContext>();
  ctx->splits = budget_splits(cfg_, g);
  ctx->per_split.resize(ctx->splits.size());
  for (std::size_t i = 0; i < ctx->splits.size(); ++i) {
    auto& sc = ctx->per_split[i];
    sc.budgets = task_budgets_for_split(cfg_, g, ctx->splits[i]);
    sc.configs =
        feasible_configs(g, profiles_, sc.budgets, cfg_.utilization_target);
    sc.configs_hw.resize(sc.configs.size());
    for (int t = 0; t < g.num_tasks(); ++t) {
      sc.configs_hw[static_cast<std::size_t>(t)] =
          hardware_view(g, t, sc.configs[static_cast<std::size_t>(t)]);
    }
    sc.feasible = all_tasks_nonempty(g, sc.configs);
    sc.feasible_hw = all_tasks_nonempty(g, sc.configs_hw);
    if (sc.feasible) sc.sink_paths = build_sink_paths(g, sc.configs);
    if (sc.feasible_hw) sc.sink_paths_hw = build_sink_paths(g, sc.configs_hw);
  }
  epoch_ = std::move(ctx);
}

void MilpAllocator::update_profile(int task, int variant,
                                   const profile::BatchProfile& profile) {
  const auto& g = *graph_;
  LOKI_CHECK(task >= 0 && task < g.num_tasks());
  LOKI_CHECK(variant >= 0 &&
             variant < static_cast<int>(
                 profiles_[static_cast<std::size_t>(task)].size()));
  profiles_[static_cast<std::size_t>(task)][static_cast<std::size_t>(variant)] =
      profile;
  if (!epoch_) return;  // nothing cached yet; the next plan() builds fresh

  for (auto& sc : epoch_->per_split) {
    // Recompute only the re-profiled task's config list under this split's
    // budgets. Identical configs (the common case for a re-profile that
    // confirms the old numbers, or a variant infeasible before and after)
    // invalidate nothing: the step models cannot change, so the retained
    // solver sessions keep warm-starting.
    auto fresh = task_feasible_configs(g, profiles_, task,
                                       sc.budgets[static_cast<std::size_t>(task)],
                                       cfg_.utilization_target);
    if (fresh == sc.configs[static_cast<std::size_t>(task)]) continue;

    sc.configs[static_cast<std::size_t>(task)] = std::move(fresh);
    sc.feasible = all_tasks_nonempty(g, sc.configs);
    sc.sink_paths =
        sc.feasible ? build_sink_paths(g, sc.configs)
                    : std::vector<std::vector<ConfigPath>>{};
    sc.steps[1] = EpochContext::StepCache();
    // The overload step builds over the same full config view.
    sc.overload = EpochContext::OverloadCache();

    // The hardware step only sees the most-accurate-variant view; a
    // re-profile of any other variant leaves it (and its retained basis)
    // untouched.
    auto fresh_hw =
        hardware_view(g, task, sc.configs[static_cast<std::size_t>(task)]);
    if (fresh_hw != sc.configs_hw[static_cast<std::size_t>(task)]) {
      sc.configs_hw[static_cast<std::size_t>(task)] = std::move(fresh_hw);
      sc.feasible_hw = all_tasks_nonempty(g, sc.configs_hw);
      sc.sink_paths_hw =
          sc.feasible_hw ? build_sink_paths(g, sc.configs_hw)
                         : std::vector<std::vector<ConfigPath>>{};
      sc.steps[0] = EpochContext::StepCache();
    }
  }
}

MilpAllocator::MilpResult MilpAllocator::solve_step(
    std::size_t split_idx, double demand_qps,
    const pipeline::MultFactorTable& mult,
    const std::vector<std::vector<bool>>& prev_variants, bool hardware_only,
    bool served_fraction_mode) {
  using solver::Constraint;
  using solver::LpProblem;
  using solver::Relation;
  using solver::Sense;
  using solver::VarType;

  const auto& g = *graph_;
  MilpResult result;

  auto& split_cache = epoch_->per_split[split_idx];
  if (!(hardware_only ? split_cache.feasible_hw : split_cache.feasible)) {
    return result;
  }
  const ConfigTable& configs =
      hardware_only ? split_cache.configs_hw : split_cache.configs;
  const auto& sink_paths =
      hardware_only ? split_cache.sink_paths_hw : split_cache.sink_paths;
  const auto sinks = g.sinks();

  // --- Variables ---
  LpProblem lp(Sense::kMinimize);
  const double S = static_cast<double>(cfg_.cluster_size);

  std::vector<std::vector<int>> n_var(static_cast<std::size_t>(g.num_tasks()));
  for (int t = 0; t < g.num_tasks(); ++t) {
    for (std::size_t j = 0; j < configs[static_cast<std::size_t>(t)].size();
         ++j) {
      // Upper bound left open: the cluster-size row already caps n, and
      // every finite bound would cost a tableau row in each node LP.
      n_var[static_cast<std::size_t>(t)].push_back(
          lp.add_variable("n_" + g.task(t).name + "_" + std::to_string(j), 0.0,
                          solver::kInf, 0.0, VarType::kInteger));
    }
  }
  std::vector<std::vector<int>> c_var(sinks.size());
  for (std::size_t si = 0; si < sinks.size(); ++si) {
    for (std::size_t pi = 0; pi < sink_paths[si].size(); ++pi) {
      // c <= 1 is implied by the per-sink flow equality; keep it unbounded
      // so it does not generate a bound row.
      c_var[si].push_back(lp.add_variable(
          "c_s" + std::to_string(si) + "_p" + std::to_string(pi), 0.0,
          solver::kInf, 0.0));
    }
  }
  int lambda_var = -1;
  if (served_fraction_mode) {
    lambda_var = lp.add_variable("lambda", 0.0, 1.0, 0.0);
  }

  // --- Constraints ---
  // (a) Per-sink flow: sum c(p) = 1 (or = lambda in overload mode).
  for (std::size_t si = 0; si < sinks.size(); ++si) {
    Constraint c;
    for (int v : c_var[si]) c.terms.push_back({v, 1.0});
    if (served_fraction_mode) {
      c.terms.push_back({lambda_var, -1.0});
      c.rhs = 0.0;
    } else {
      c.rhs = 1.0;
    }
    c.rel = Relation::kEq;
    c.name = "flow_sink" + std::to_string(si);
    lp.add_constraint(std::move(c));
  }

  // (b) Prefix consistency across sinks sharing an upstream task (hop-by-hop
  //     routing cannot split a shared prefix differently per sink).
  for (int t = 0; t < g.num_tasks(); ++t) {
    const auto below = g.sinks_below(t);
    if (below.size() < 2) continue;
    std::vector<std::size_t> below_idx;
    for (std::size_t si = 0; si < sinks.size(); ++si) {
      if (std::find(below.begin(), below.end(), sinks[si]) != below.end()) {
        below_idx.push_back(si);
      }
    }
    const auto prefixes = enumerate_config_paths(g.task_path_to(t), configs);
    for (const auto& prefix : prefixes) {
      const std::size_t s0 = below_idx[0];
      for (std::size_t bi = 1; bi < below_idx.size(); ++bi) {
        const std::size_t si = below_idx[bi];
        Constraint c;
        for (std::size_t pi = 0; pi < sink_paths[si].size(); ++pi) {
          if (config_path_extends(sink_paths[si][pi], prefix)) {
            c.terms.push_back({c_var[si][pi], 1.0});
          }
        }
        for (std::size_t pi = 0; pi < sink_paths[s0].size(); ++pi) {
          if (config_path_extends(sink_paths[s0][pi], prefix)) {
            c.terms.push_back({c_var[s0][pi], -1.0});
          }
        }
        c.rel = Relation::kEq;
        c.rhs = 0.0;
        c.name = "consistency_t" + std::to_string(t);
        lp.add_constraint(std::move(c));
      }
    }
  }

  // (c) Capacity per (task, config), Eq. 2. Shared-prefix load is counted
  //     once via the canonical (first) sink below the task.
  for (int t = 0; t < g.num_tasks(); ++t) {
    const auto below = g.sinks_below(t);
    std::size_t s0 = 0;
    for (std::size_t si = 0; si < sinks.size(); ++si) {
      if (sinks[si] == below.front()) s0 = si;
    }
    const auto tpath = g.task_path_to(sinks[s0]);
    std::size_t pos = 0;
    for (std::size_t i = 0; i < tpath.size(); ++i) {
      if (tpath[i] == t) pos = i;
    }
    for (std::size_t j = 0; j < configs[static_cast<std::size_t>(t)].size();
         ++j) {
      Constraint c;
      for (std::size_t pi = 0; pi < sink_paths[s0].size(); ++pi) {
        const auto& p = sink_paths[s0][pi];
        if (p.cfg_idx[pos] != static_cast<int>(j)) continue;
        const double m = config_path_multiplier(g, configs, mult, p, pos);
        c.terms.push_back({c_var[s0][pi], demand_qps * m});
      }
      const auto& vc = configs[static_cast<std::size_t>(t)][j];
      c.terms.push_back(
          {n_var[static_cast<std::size_t>(t)][j], -vc.throughput_qps});
      c.rel = Relation::kLe;
      c.rhs = 0.0;
      c.name = "cap_t" + std::to_string(t) + "_j" + std::to_string(j);
      lp.add_constraint(std::move(c));
    }
  }

  // (d) Cluster size (Eq. 3).
  {
    Constraint c;
    for (const auto& vars : n_var) {
      for (int v : vars) c.terms.push_back({v, 1.0});
    }
    c.rel = Relation::kLe;
    c.rhs = S;
    c.name = "cluster";
    lp.add_constraint(std::move(c));
  }

  // (e) At least one instance per task so every task stays routable even at
  //     zero demand.
  for (int t = 0; t < g.num_tasks(); ++t) {
    Constraint c;
    for (int v : n_var[static_cast<std::size_t>(t)]) {
      c.terms.push_back({v, 1.0});
    }
    c.rel = Relation::kGe;
    c.rhs = 1.0;
    c.name = "host_t" + std::to_string(t);
    lp.add_constraint(std::move(c));
  }

  // --- Objective ---
  constexpr double kServerPenalty = 1e-6;
  const double sink_weight = 1.0 / static_cast<double>(sinks.size());
  auto continuity = [&](int task, int variant) {
    if (prev_variants.empty()) return 0.0;
    const auto& pv = prev_variants[static_cast<std::size_t>(task)];
    return pv[static_cast<std::size_t>(variant)] ? cfg_.continuity_bonus : 0.0;
  };
  auto set_accuracy_objective = [&]() {
    lp.set_sense(Sense::kMaximize);
    for (std::size_t si = 0; si < sinks.size(); ++si) {
      for (std::size_t pi = 0; pi < sink_paths[si].size(); ++pi) {
        lp.set_objective_coeff(
            c_var[si][pi],
            sink_weight * config_path_accuracy(g, configs, sink_paths[si][pi]));
      }
    }
    for (int t = 0; t < g.num_tasks(); ++t) {
      for (std::size_t j = 0; j < configs[static_cast<std::size_t>(t)].size();
           ++j) {
        lp.set_objective_coeff(
            n_var[static_cast<std::size_t>(t)][j],
            -kServerPenalty +
                continuity(t, configs[static_cast<std::size_t>(t)][j].variant));
      }
    }
  };

  // Warm start from the greedy single-choice solution (not in lambda mode).
  std::optional<std::vector<double>> warm;
  if (!served_fraction_mode) {
    const auto gc = greedy_choice(g, configs, mult, demand_qps,
                                  cfg_.cluster_size,
                                  /*allow_degrade=*/!hardware_only);
    if (gc.feasible) {
      std::vector<double> x(static_cast<std::size_t>(lp.num_variables()), 0.0);
      for (int t = 0; t < g.num_tasks(); ++t) {
        x[static_cast<std::size_t>(
            n_var[static_cast<std::size_t>(t)]
                 [static_cast<std::size_t>(
                     gc.cfg_idx[static_cast<std::size_t>(t)])])] =
            static_cast<double>(gc.replicas[static_cast<std::size_t>(t)]);
      }
      for (std::size_t si = 0; si < sinks.size(); ++si) {
        for (std::size_t pi = 0; pi < sink_paths[si].size(); ++pi) {
          const auto& p = sink_paths[si][pi];
          bool matches = true;
          for (std::size_t i = 0; i < p.tasks.size(); ++i) {
            if (p.cfg_idx[i] !=
                gc.cfg_idx[static_cast<std::size_t>(p.tasks[i])]) {
              matches = false;
              break;
            }
          }
          if (matches) x[static_cast<std::size_t>(c_var[si][pi])] = 1.0;
        }
      }
      warm = std::move(x);
    }
  }

  // The overload step dives (depth-first + dual cutoff): its searches are
  // node-budget-truncated, diving finds incumbents early and the cutoff
  // then closes most of the remaining tree mid-repair (~20% fewer pivots
  // at demand 5000). The hardware/accuracy steps keep best-first: their
  // truncated-search incumbents feed the next epoch's continuity bonus,
  // and best-first reaches a stable plan fixed point (plan(prev=A) == A)
  // where diving oscillates between near-equal optima — which would break
  // the steady-state bit-identical warm tier's hit rate.
  solver::MilpOptions step_milp = cfg_.milp;
  if (served_fraction_mode) {
    step_milp.node_order = solver::NodeOrder::kDepthFirst;
  }
  solver::BranchAndBound bnb(step_milp);
  AllocationPlan plan;
  plan.demand_qps = demand_qps;
  auto track = [&result](const solver::MilpSolution& sol) {
    result.stats.add(sol);
  };

  // Extracts instances/flows/accuracy from a solution vector.
  auto extract = [&](const std::vector<double>& x, double lambda) {
    double acc = 0.0;
    int servers = 0;
    for (int t = 0; t < g.num_tasks(); ++t) {
      for (std::size_t j = 0; j < configs[static_cast<std::size_t>(t)].size();
           ++j) {
        const int reps = static_cast<int>(std::lround(
            x[static_cast<std::size_t>(n_var[static_cast<std::size_t>(t)][j])]));
        if (reps <= 0) continue;
        const auto& vc = configs[static_cast<std::size_t>(t)][j];
        plan.instances.push_back({t, vc.variant, vc.batch, reps});
        plan.latency_budget_s[{t, vc.variant}] = 2.0 * vc.latency_s;
        servers += reps;
      }
    }
    const double norm = std::max(lambda, 1e-12);
    for (std::size_t si = 0; si < sinks.size(); ++si) {
      for (std::size_t pi = 0; pi < sink_paths[si].size(); ++pi) {
        const double f = x[static_cast<std::size_t>(c_var[si][pi])];
        if (f < 1e-9) continue;
        const auto& p = sink_paths[si][pi];
        pipeline::VariantPath vp;
        vp.sink = sinks[si];
        vp.tasks = p.tasks;
        for (std::size_t i = 0; i < p.tasks.size(); ++i) {
          vp.variants.push_back(configs[static_cast<std::size_t>(p.tasks[i])]
                                       [static_cast<std::size_t>(p.cfg_idx[i])]
                                           .variant);
        }
        plan.flows.push_back({std::move(vp), f / norm});
        acc += sink_weight * (f / norm) * config_path_accuracy(g, configs, p);
      }
    }
    plan.expected_accuracy = acc;
    plan.servers_used = servers;
    plan.feasible = true;
  };

  if (served_fraction_mode) {
    // Stage A: maximize served fraction. The trivial lambda=0 point (one
    // instance per task, no flow) is always integer-feasible and guarantees
    // the search returns with an incumbent even under tight node budgets.
    std::vector<double> trivial(static_cast<std::size_t>(lp.num_variables()),
                                0.0);
    for (int t = 0; t < g.num_tasks(); ++t) {
      trivial[static_cast<std::size_t>(n_var[static_cast<std::size_t>(t)][0])] =
          1.0;
    }
    lp.set_sense(Sense::kMaximize);
    lp.set_objective_coeff(lambda_var, 1.0);
    for (const auto& vars : n_var) {
      for (int v : vars) lp.set_objective_coeff(v, -kServerPenalty);
    }
    // Cross-epoch memo (see OverloadCache): a steady overload epoch — the
    // stage-A model and the continuity inputs bit-match the last build that
    // produced a plan — returns that plan without re-solving. Gating on the
    // stage-A model is sound because stage B is a pure function of stage
    // A's model and solution (deterministic solver), so equal stage-A
    // inputs imply an equal final result.
    auto& oc = split_cache.overload;
    if (cfg_.warm_start_across_epochs && oc.has_result &&
        prev_variants == oc.prev_variants &&
        solver::structurally_equal(lp, oc.model)) {
      result = oc.result;
      result.stats = SolverStats{};
      result.stats.epoch_cache_skips = 1;
      return result;
    }
    // Stage A and B share one solver session: stage B's model is stage A's
    // with a different objective and a raised lambda floor, so its root LP
    // crash-starts from stage A's retained root basis (the near-identical
    // tier) instead of cold-solving. With cross-epoch warm starts the
    // session persists in the cache — the opt-in near tier then lets a
    // drifted-demand epoch crash-start stage A from last epoch's basis; a
    // cold solve resets the session first, so pivots match a transient
    // session exactly.
    solver::ResolveSession local_session;
    solver::ResolveSession* stage_session = &local_session;
    solver::WarmTier tier_a = solver::WarmTier::kCold;
    if (cfg_.warm_start_across_epochs) {
      stage_session = &oc.session;
      if (cfg_.near_warm_start && oc.has_model &&
          solver::near_identical(lp, oc.model)) {
        tier_a = solver::WarmTier::kNearIdentical;
      }
      oc.model = lp;  // snapshot before stage B mutates the objective/bounds
      oc.prev_variants = prev_variants;
      oc.has_model = true;
      oc.has_result = false;
    }
    auto solA = bnb.solve(lp, trivial, stage_session, tier_a);
    track(solA);
    if (solA.status != solver::MilpStatus::kOptimal &&
        solA.status != solver::MilpStatus::kFeasible) {
      return result;
    }
    const double lambda_star =
        solA.values[static_cast<std::size_t>(lambda_var)];
    // Stage B: hold the served fraction and maximize accuracy. The floor is
    // a *bound* on lambda, not an extra row — same tableau shape as stage A
    // and one less row in every node LP.
    lp.set_objective_coeff(lambda_var, 0.0);
    lp.set_bounds(lambda_var, std::max(0.0, lambda_star - 1e-6), 1.0);
    set_accuracy_objective();
    auto solB = bnb.solve(lp, solA.values, stage_session,
                          solver::WarmTier::kNearIdentical);
    track(solB);
    const auto& sol = (solB.status == solver::MilpStatus::kOptimal ||
                       solB.status == solver::MilpStatus::kFeasible)
                          ? solB
                          : solA;
    plan.mode = ScalingMode::kOverload;
    plan.served_fraction = sol.values[static_cast<std::size_t>(lambda_var)];
    extract(sol.values, plan.served_fraction);
    result.feasible = true;
    result.plan = std::move(plan);
    if (cfg_.warm_start_across_epochs) {
      oc.result = result;
      oc.has_result = true;
    }
    return result;
  }

  if (hardware_only) {
    lp.set_sense(Sense::kMinimize);
    for (const auto& vars : n_var) {
      for (int v : vars) lp.set_objective_coeff(v, 1.0);
    }
  } else {
    set_accuracy_objective();
  }

  // Cross-epoch warm-start gate: with steady demand / mult / previous-plan
  // inputs the step model is bit-identical to last epoch's, so the solve can
  // resume from the retained basis (same plans, far fewer pivots). Any
  // difference at all — one coefficient, one warm-incumbent entry — reads as
  // a new model and, unless the opt-in near tier recognizes it as the same
  // model with drifted coefficients (demand ramp), cold-solves.
  auto& step_cache = split_cache.steps[hardware_only ? 0 : 1];
  const bool same_model = cfg_.warm_start_across_epochs &&
                          step_cache.has_model && warm == step_cache.warm &&
                          solver::structurally_equal(lp, step_cache.model);
  if (same_model && step_cache.last_no_plan) {
    // This exact model already failed to produce a plan; the solver is
    // deterministic, so re-running it would only re-prove the verdict.
    result.stats.epoch_cache_skips = 1;
    return result;
  }
  solver::WarmTier tier = solver::WarmTier::kCold;
  if (same_model) {
    tier = solver::WarmTier::kIdentical;
  } else if (cfg_.warm_start_across_epochs && cfg_.near_warm_start &&
             step_cache.has_model &&
             solver::near_identical(lp, step_cache.model)) {
    tier = solver::WarmTier::kNearIdentical;
  }
  solver::ResolveSession* session =
      cfg_.warm_start_across_epochs ? &step_cache.session : nullptr;
  auto sol = bnb.solve(lp, warm, session, tier);
  if (cfg_.warm_start_across_epochs && !same_model) {
    step_cache.model = lp;
    step_cache.warm = warm;
    step_cache.has_model = true;
  }
  track(sol);
  const bool has_plan = sol.status == solver::MilpStatus::kOptimal ||
                        sol.status == solver::MilpStatus::kFeasible;
  // Memoize only *proven* infeasibility: kNoSolution can mean a truncated
  // search (possibly wall-clock truncation under machine load), and caching
  // that would permanently disable the step for steady demand. A proven
  // infeasible verdict is deterministic and safe to reuse.
  step_cache.last_no_plan = sol.status == solver::MilpStatus::kInfeasible;
  if (!has_plan) {
    return result;
  }
  plan.mode = hardware_only ? ScalingMode::kHardware : ScalingMode::kAccuracy;
  plan.served_fraction = 1.0;
  extract(sol.values, 1.0);
  result.feasible = true;
  result.plan = std::move(plan);
  return result;
}

PlanResult MilpAllocator::plan(const PlanRequest& request) {
  const auto t0 = std::chrono::steady_clock::now();
  // Failure re-plans shrink placement capacity to the surviving workers.
  // The smaller capacity changes the built models, so the epoch warm cache
  // naturally falls back to cold for the degraded epochs and re-warms once
  // capacity is restored.
  ScopedClusterCapacity capacity(&cfg_.cluster_size, request,
                                 graph_->num_tasks());
  // Request shape invariant: observed arrival rates are either absent
  // (planner probes) or one entry per task — never a partial vector.
  LOKI_CHECK_MSG(request.task_arrivals_qps.empty() ||
                     static_cast<int>(request.task_arrivals_qps.size()) ==
                         graph_->num_tasks(),
                 "task_arrivals_qps has " << request.task_arrivals_qps.size()
                                          << " entries for "
                                          << graph_->num_tasks() << " tasks");
  ensure_epoch_context();
  const double demand_qps = request.demand_qps;
  const auto& splits = epoch_->splits;
  if (!pool_) {
    pool_ = std::make_unique<ThreadPool>(
        std::min<std::size_t>(splits.size(), 8));
  }

  // Previous-plan view -> hosted-variant bitmap. The accuracy objective
  // gives a tiny per-replica bonus for reusing these variants: successive
  // MILP solves otherwise flip between near-equal mixes, and every flip
  // costs real model-swap downtime at runtime (plan-continuity
  // regularization).
  std::vector<std::vector<bool>> prev_variants;
  if (request.previous_plan != nullptr) {
    prev_variants.assign(static_cast<std::size_t>(graph_->num_tasks()), {});
    for (int t = 0; t < graph_->num_tasks(); ++t) {
      prev_variants[static_cast<std::size_t>(t)].assign(
          static_cast<std::size_t>(graph_->task(t).catalog.size()), false);
    }
    for (const auto& ic : request.previous_plan->instances) {
      if (ic.task < 0 || ic.task >= graph_->num_tasks()) continue;
      auto& pv = prev_variants[static_cast<std::size_t>(ic.task)];
      if (ic.variant < 0 || ic.variant >= static_cast<int>(pv.size())) continue;
      pv[static_cast<std::size_t>(ic.variant)] = true;
    }
  }

  PlanResult out;
  out.epoch = request.epoch;
  // Solver counters aggregate over every split of every step attempted for
  // this allocation, not just the winning plan's own solve.
  SolverStats agg;

  auto finish = [&](AllocationPlan plan) {
    plan.solve_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    plan.demand_qps = demand_qps;
    plan.solver = agg;
    out.solver = agg;
    out.plan = std::move(plan);
    return std::move(out);
  };

  // Solves all splits for one step concurrently; selection afterwards is
  // deterministic (index order). `better` is the step's plan preference.
  auto run_step = [&](const char* step_name, bool hardware_only,
                      bool served_fraction_mode,
                      auto&& better) -> std::optional<AllocationPlan> {
    const auto s0 = std::chrono::steady_clock::now();
    StepSolve step;
    step.step = step_name;
    step.splits_attempted = static_cast<int>(splits.size());
    std::vector<MilpResult> results(splits.size());
    pool_->parallel_for(splits.size(), [&](std::size_t i) {
      results[i] = solve_step(i, demand_qps, request.mult, prev_variants,
                              hardware_only, served_fraction_mode);
    });
    std::optional<AllocationPlan> best;
    for (auto& res : results) {
      step.solver += res.stats;
      if (!res.feasible) continue;
      ++step.splits_feasible;
      if (!best || better(res.plan, *best)) best = std::move(res.plan);
    }
    agg += step.solver;
    step.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - s0)
            .count();
    step.selected = best.has_value();
    out.steps.push_back(std::move(step));
    return best;
  };

  // Step 1: hardware scaling — minimize servers at maximum accuracy.
  if (auto best = run_step(
          "hardware", /*hardware_only=*/true, /*served_fraction_mode=*/false,
          [](const AllocationPlan& a, const AllocationPlan& b) {
            return a.servers_used < b.servers_used;
          })) {
    return finish(std::move(*best));
  }

  // Step 2: accuracy scaling — maximize accuracy on the full cluster.
  if (auto best = run_step(
          "accuracy", /*hardware_only=*/false, /*served_fraction_mode=*/false,
          [](const AllocationPlan& a, const AllocationPlan& b) {
            return a.expected_accuracy > b.expected_accuracy + 1e-9 ||
                   (std::abs(a.expected_accuracy - b.expected_accuracy) <=
                        1e-9 &&
                    a.servers_used < b.servers_used);
          })) {
    return finish(std::move(*best));
  }

  // Step 3: overload — maximize served fraction, then accuracy.
  auto best = run_step(
      "overload", /*hardware_only=*/false, /*served_fraction_mode=*/true,
      [](const AllocationPlan& a, const AllocationPlan& b) {
        return a.served_fraction > b.served_fraction + 1e-9 ||
               (std::abs(a.served_fraction - b.served_fraction) <= 1e-9 &&
                a.expected_accuracy > b.expected_accuracy);
      });
  LOKI_CHECK_MSG(best.has_value(),
                 "overload MILP must always be feasible (lambda=0 works)");
  return finish(std::move(*best));
}

}  // namespace loki::serving
