#include "serving/types.hpp"

namespace loki::serving {

std::string to_string(ScalingMode m) {
  switch (m) {
    case ScalingMode::kHardware: return "hardware";
    case ScalingMode::kAccuracy: return "accuracy";
    case ScalingMode::kOverload: return "overload";
  }
  return "?";
}

int AllocationPlan::total_replicas() const {
  int n = 0;
  for (const auto& ic : instances) n += ic.replicas;
  return n;
}

int AllocationPlan::replicas_of(int task, int variant) const {
  int n = 0;
  for (const auto& ic : instances) {
    if (ic.task == task && ic.variant == variant) n += ic.replicas;
  }
  return n;
}

}  // namespace loki::serving
