#include "serving/types.hpp"

#include <algorithm>

#include "solver/milp.hpp"

namespace loki::serving {

SolverStats& SolverStats::operator+=(const SolverStats& o) {
  milp_solves += o.milp_solves;
  nodes_explored += o.nodes_explored;
  nodes_pruned += o.nodes_pruned;
  lp_iterations += o.lp_iterations;
  lp_phase1_iterations += o.lp_phase1_iterations;
  warm_start_hits += o.warm_start_hits;
  cold_solves += o.cold_solves;
  epoch_warm_hits += o.epoch_warm_hits;
  epoch_cache_skips += o.epoch_cache_skips;
  near_warm_hits += o.near_warm_hits;
  devex_resets += o.devex_resets;
  presolve_rows_removed += o.presolve_rows_removed;
  presolve_cols_removed += o.presolve_cols_removed;
  max_gap = std::max(max_gap, o.max_gap);
  return *this;
}

void SolverStats::add(const solver::MilpSolution& sol) {
  ++milp_solves;
  nodes_explored += sol.nodes_explored;
  nodes_pruned += sol.nodes_pruned;
  lp_iterations += sol.lp_iterations;
  lp_phase1_iterations += sol.lp_phase1_iterations;
  warm_start_hits += sol.warm_start_hits;
  cold_solves += sol.cold_solves;
  if (sol.root_warm_started) ++epoch_warm_hits;
  if (sol.root_near_warm) ++near_warm_hits;
  devex_resets += sol.devex_resets;
  presolve_rows_removed += sol.presolve_rows_removed;
  presolve_cols_removed += sol.presolve_cols_removed;
  max_gap = std::max(max_gap, sol.gap);
}

AllocationPlan AllocationStrategy::allocate(
    double demand_qps, const pipeline::MultFactorTable& mult) {
  PlanRequest req;
  req.demand_qps = demand_qps;
  req.mult = mult;
  req.epoch = shim_epochs_++;
  req.previous_plan = shim_has_prev_ ? &shim_prev_plan_ : nullptr;
  PlanResult result = plan(req);
  shim_prev_plan_ = result.plan;
  shim_has_prev_ = true;
  return std::move(result.plan);
}

std::string to_string(ScalingMode m) {
  switch (m) {
    case ScalingMode::kHardware: return "hardware";
    case ScalingMode::kAccuracy: return "accuracy";
    case ScalingMode::kOverload: return "overload";
  }
  return "?";
}

int AllocationPlan::total_replicas() const {
  int n = 0;
  for (const auto& ic : instances) n += ic.replicas;
  return n;
}

int AllocationPlan::replicas_of(int task, int variant) const {
  int n = 0;
  for (const auto& ic : instances) {
    if (ic.task == task && ic.variant == variant) n += ic.replicas;
  }
  return n;
}

}  // namespace loki::serving
