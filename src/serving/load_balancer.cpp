#include "serving/load_balancer.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace loki::serving {

int pick_route(const std::vector<GroupRoute>& routes, double r) {
  if (routes.empty()) return -1;
  double cum = 0.0;
  for (const auto& route : routes) {
    cum += route.probability;
    if (r < cum) return route.group;
  }
  // Probabilities that are meant to be exhaustive (qps shares of a fully
  // placed demand) can accumulate to 0.999...; a draw in that fp tail must
  // not shed. A genuinely partial table (sum < 1) keeps returning -1.
  if (cum >= 1.0 - 1e-9) return routes.back().group;
  return -1;  // unplaced remainder
}

void RoutingPlan::finalize(int num_tasks) {
  route_tasks_ = num_tasks;
  route_index_.assign(
      group_routes.size() * static_cast<std::size_t>(num_tasks), -1);
  route_tables_.clear();
  draw_cum_.clear();
  draw_grp_.clear();
  draw_refs_.clear();
  // Flattens one table into the shared cum/grp arrays. The partial sums are
  // accumulated in the same left-to-right order as pick_route's linear scan,
  // so DrawTable::pick maps every uniform draw to the identical group
  // (differential-tested in load_balancer_test).
  const auto flatten = [this](const std::vector<GroupRoute>& table) {
    TableRef ref{static_cast<std::uint32_t>(draw_cum_.size()),
                 static_cast<std::uint32_t>(table.size())};
    double cum = 0.0;
    for (const auto& route : table) {
      cum += route.probability;
      draw_cum_.push_back(cum);
      draw_grp_.push_back(route.group);
    }
    return ref;
  };
  frontend_ref_ = flatten(frontend);
  for (std::size_t gi = 0; gi < group_routes.size(); ++gi) {
    for (const auto& [task, table] : group_routes[gi]) {
      if (task < 0 || task >= num_tasks) continue;
      route_index_[gi * static_cast<std::size_t>(num_tasks) +
                   static_cast<std::size_t>(task)] =
          static_cast<std::int32_t>(route_tables_.size());
      route_tables_.push_back(table);
      draw_refs_.push_back(flatten(table));
    }
  }
}

LoadBalancer::LoadBalancer(const pipeline::PipelineGraph* graph,
                           const ProfileTable* profiles,
                           double utilization_target)
    : graph_(graph), profiles_(profiles),
      utilization_target_(utilization_target) {
  LOKI_CHECK(graph_ != nullptr && profiles_ != nullptr);
  LOKI_CHECK(utilization_target_ > 0.0 && utilization_target_ <= 1.0);
}

RoutingPlan LoadBalancer::most_accurate_first(
    const AllocationPlan& plan, double demand_qps,
    const pipeline::MultFactorTable& mult) const {
  const auto& g = *graph_;
  const int ngroups = static_cast<int>(plan.instances.size());

  RoutingPlan out;
  out.group_routes.assign(static_cast<std::size_t>(ngroups), {});
  out.backup_per_task.assign(static_cast<std::size_t>(g.num_tasks()), {});
  out.group_exec_s.assign(static_cast<std::size_t>(ngroups), 0.0);
  out.group_incoming_qps.assign(static_cast<std::size_t>(ngroups), 0.0);

  // Per-group capacity (replicas * profiled throughput at configured batch)
  // and bookkeeping, mirroring Algorithm 1's worker metadata.
  std::vector<double> capacity(static_cast<std::size_t>(ngroups), 0.0);
  std::vector<double> incoming(static_cast<std::size_t>(ngroups), 0.0);
  std::vector<std::vector<int>> groups_of_task(
      static_cast<std::size_t>(g.num_tasks()));
  for (int gi = 0; gi < ngroups; ++gi) {
    const auto& ic = plan.instances[static_cast<std::size_t>(gi)];
    const auto& prof = (*profiles_)[static_cast<std::size_t>(ic.task)]
                                   [static_cast<std::size_t>(ic.variant)];
    capacity[static_cast<std::size_t>(gi)] =
        static_cast<double>(ic.replicas) * prof.throughput_for(ic.batch) *
        utilization_target_;
    out.group_exec_s[static_cast<std::size_t>(gi)] =
        prof.latency_for(ic.batch);
    groups_of_task[static_cast<std::size_t>(ic.task)].push_back(gi);
  }

  // Sort each task's groups by single-model accuracy descending (tie:
  // higher throughput, then lower index) — Algorithm 1 line 5/11.
  for (auto& gs : groups_of_task) {
    std::sort(gs.begin(), gs.end(), [&](int a, int b) {
      const auto& ia = plan.instances[static_cast<std::size_t>(a)];
      const auto& ib = plan.instances[static_cast<std::size_t>(b)];
      const double aa = g.task(ia.task).catalog.at(ia.variant).accuracy;
      const double ab = g.task(ib.task).catalog.at(ib.variant).accuracy;
      if (aa != ab) return aa > ab;
      if (capacity[static_cast<std::size_t>(a)] !=
          capacity[static_cast<std::size_t>(b)]) {
        return capacity[static_cast<std::size_t>(a)] >
               capacity[static_cast<std::size_t>(b)];
      }
      return a < b;
    });
  }

  // Assigns `amount` QPS across `targets` (accuracy-ordered) respecting
  // remaining capacities; returns (group, routed qps) pairs.
  auto assign_demand = [&](double amount, const std::vector<int>& targets) {
    std::vector<std::pair<int, double>> routed;
    double remaining = amount;
    for (int gi : targets) {
      if (remaining <= 1e-12) break;
      double& cap = capacity[static_cast<std::size_t>(gi)];
      const double take = std::min(remaining, cap);
      if (take <= 1e-12) continue;
      routed.push_back({gi, take});
      cap -= take;
      remaining -= take;
      incoming[static_cast<std::size_t>(gi)] += take;
    }
    return routed;
  };

  // Frontend -> root groups. In overload the plan serves only a fraction of
  // demand; MostAccurateFirst places what capacity allows and the frontend
  // sheds the remainder (probabilities sum < 1).
  const int root = g.root();
  const double root_demand = demand_qps;
  if (root_demand > 1e-12) {
    const auto routed = assign_demand(
        root_demand, groups_of_task[static_cast<std::size_t>(root)]);
    for (const auto& [gi, qps] : routed) {
      out.frontend.push_back({gi, qps / root_demand});
    }
  } else {
    // No demand estimate yet: route everything to the most accurate group.
    const auto& gs = groups_of_task[static_cast<std::size_t>(root)];
    if (!gs.empty()) out.frontend.push_back({gs.front(), 1.0});
    if (!gs.empty()) incoming[static_cast<std::size_t>(gs.front())] = 0.0;
  }

  // Process tasks topologically; for each group, distribute its outgoing
  // intermediate demand to child groups (Algorithm 1 lines 4-20).
  for (int t : g.topological_order()) {
    for (int gi : groups_of_task[static_cast<std::size_t>(t)]) {
      const auto& ic = plan.instances[static_cast<std::size_t>(gi)];
      const double inc = incoming[static_cast<std::size_t>(gi)];
      out.group_incoming_qps[static_cast<std::size_t>(gi)] = inc;
      const double r = mult.at(static_cast<std::size_t>(t))
                           .at(static_cast<std::size_t>(ic.variant));
      for (int child : g.children(t)) {
        const double outgoing = inc * r * g.branch_ratio(t, child);
        if (outgoing <= 1e-12) {
          // Still provide a route so runtime fan-out has a target even when
          // the planned demand was ~0: point at the most accurate group.
          const auto& cg = groups_of_task[static_cast<std::size_t>(child)];
          if (!cg.empty()) {
            out.group_routes[static_cast<std::size_t>(gi)][child] = {
                {cg.front(), 1.0}};
          }
          continue;
        }
        const auto routed = assign_demand(
            outgoing, groups_of_task[static_cast<std::size_t>(child)]);
        auto& table = out.group_routes[static_cast<std::size_t>(gi)][child];
        for (const auto& [cgi, qps] : routed) {
          table.push_back({cgi, qps / outgoing});
        }
      }
    }
  }

  // Backup tables: per task, groups with leftover capacity, most accurate
  // first (groups_of_task is already accuracy-ordered).
  for (int t = 0; t < g.num_tasks(); ++t) {
    for (int gi : groups_of_task[static_cast<std::size_t>(t)]) {
      const double leftover = capacity[static_cast<std::size_t>(gi)];
      if (leftover <= 1e-9) continue;
      const auto& ic = plan.instances[static_cast<std::size_t>(gi)];
      out.backup_per_task[static_cast<std::size_t>(t)].push_back(
          {gi, leftover, out.group_exec_s[static_cast<std::size_t>(gi)],
           g.task(t).catalog.at(ic.variant).accuracy});
    }
  }
  out.finalize(g.num_tasks());
  return out;
}

}  // namespace loki::serving
