// Exact linearization of the paper's §4.1 MILP (Eq. 2–12), with the batch
// size y(i,k) as a *decision variable* rather than fixed per budget split.
//
// This is the formulation the paper writes down, made linear the standard
// way:
//   z(i,k,b) ∈ {0,1}   — variant k of task i is configured with max batch b
//                        (Σ_b z ≤ 1; Eq. 4)
//   n(i,k,b) ∈ Z≥0     — instances of that configuration, n ≤ S·z
//   c(p) ≥ 0           — per-sink path flow (Eq. 2 demand terms)
//   I(p) ∈ {0,1}       — path-used indicator; c(p) ≤ I(p) and the big-M
//                        latency constraint Σ l(i,k) ≤ L' + M(1 − I(p))
//                        (Eq. 5–7), where l(i,k) = Σ_b z(i,k,b)·lat(i,k,b).
//
// It is exponentially heavier than the budget-split model the production
// allocator uses (extra binaries per batch choice and per path), so it is
// exposed for tests and the allocator ablation: on small instances the
// budget-split optimum should match the exact optimum closely, which is
// precisely what tests/exact_milp_test.cpp verifies.
#pragma once

#include "pipeline/paths.hpp"
#include "profile/profiler.hpp"
#include "serving/allocation.hpp"
#include "serving/types.hpp"

namespace loki::serving {

struct ExactMilpResult {
  bool feasible = false;
  ScalingMode mode = ScalingMode::kHardware;
  double objective = 0.0;          // servers (hardware) or accuracy
  double expected_accuracy = 1.0;  // flow-weighted over sinks
  int servers_used = 0;
  solver::MilpStatus status = solver::MilpStatus::kNoSolution;
  /// Branch-and-bound counters for the single solve behind this result.
  SolverStats stats;
};

class ExactMilpFormulation {
 public:
  ExactMilpFormulation(AllocatorConfig cfg,
                       const pipeline::PipelineGraph* graph,
                       ProfileTable profiles);

  /// Step-1 model (Eq. 8–11): most accurate variants only, minimize Σn.
  ExactMilpResult solve_hardware(double demand_qps,
                                 const pipeline::MultFactorTable& mult) const;

  /// Step-2 model (Eq. 12): maximize system accuracy at full variant
  /// freedom, all demand served.
  ExactMilpResult solve_accuracy(double demand_qps,
                                 const pipeline::MultFactorTable& mult) const;

 private:
  ExactMilpResult solve(double demand_qps,
                        const pipeline::MultFactorTable& mult,
                        bool hardware_only) const;

  AllocatorConfig cfg_;
  const pipeline::PipelineGraph* graph_;
  ProfileTable profiles_;
};

}  // namespace loki::serving
