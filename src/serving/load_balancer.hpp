// The Load Balancer (§5): turns the Resource Manager's allocation plan into
// routing tables via the MostAccurateFirst algorithm (Algorithm 1), and
// produces the backup tables (leftover-capacity lists) that opportunistic
// rerouting (§5.2) consults at runtime.
//
// Routing is computed at instance-group granularity — all replicas of one
// (task, variant, batch) config are interchangeable — and the runtime picks
// the least-loaded replica within the chosen group.
#pragma once

#include <map>
#include <vector>

#include "pipeline/graph.hpp"
#include "serving/allocation.hpp"
#include "serving/types.hpp"

namespace loki::serving {

/// Probability of routing to one instance group (index into
/// AllocationPlan::instances).
struct GroupRoute {
  int group = -1;
  double probability = 0.0;
};

/// Backup-table entry (§5.1 end / §5.2): a group with leftover capacity,
/// its profiled execution time and accuracy, used to find a faster
/// alternative when a request falls behind its latency budget.
struct BackupEntry {
  int group = -1;
  double leftover_qps = 0.0;
  double exec_s = 0.0;
  double accuracy = 0.0;
};

/// Routing tables for the Frontend and every instance group.
struct RoutingPlan {
  /// Frontend -> root-task groups. Probabilities sum to <= 1; the deficit is
  /// demand the plan cannot place (shed at the frontend).
  std::vector<GroupRoute> frontend;
  /// group_routes[group][child_task] -> distribution over child groups.
  /// Probabilities per (group, child) sum to <= 1; deficit items are
  /// dropped at forward time (no capacity anywhere downstream).
  std::vector<std::map<int, std::vector<GroupRoute>>> group_routes;
  /// Per task: groups with leftover capacity, most accurate first.
  std::vector<std::vector<BackupEntry>> backup_per_task;
  /// Profiled batch execution latency per group (for rerouting math).
  std::vector<double> group_exec_s;
  /// Planned incoming QPS per group (diagnostics / tests).
  std::vector<double> group_incoming_qps;
};

class LoadBalancer {
 public:
  /// `utilization_target` derates group capacities the same way the
  /// allocator derates them, so routing saturates groups at the planned
  /// utilization rather than at 100% of profiled throughput.
  LoadBalancer(const pipeline::PipelineGraph* graph,
               const ProfileTable* profiles, double utilization_target = 1.0);

  /// MostAccurateFirst (Algorithm 1) at instance-group granularity.
  /// `demand_qps` is the frontend demand estimate; `mult` the current
  /// multiplicative-factor estimates.
  RoutingPlan most_accurate_first(const AllocationPlan& plan,
                                  double demand_qps,
                                  const pipeline::MultFactorTable& mult) const;

 private:
  const pipeline::PipelineGraph* graph_;
  const ProfileTable* profiles_;
  double utilization_target_;
};

}  // namespace loki::serving
