// The Load Balancer (§5): turns the Resource Manager's allocation plan into
// routing tables via the MostAccurateFirst algorithm (Algorithm 1), and
// produces the backup tables (leftover-capacity lists) that opportunistic
// rerouting (§5.2) consults at runtime.
//
// Routing is computed at instance-group granularity — all replicas of one
// (task, variant, batch) config are interchangeable — and the runtime picks
// the least-loaded replica within the chosen group.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "pipeline/graph.hpp"
#include "serving/allocation.hpp"
#include "serving/types.hpp"

namespace loki::serving {

/// Probability of routing to one instance group (index into
/// AllocationPlan::instances).
struct GroupRoute {
  int group = -1;
  double probability = 0.0;
};

/// Backup-table entry (§5.1 end / §5.2): a group with leftover capacity,
/// its profiled execution time and accuracy, used to find a faster
/// alternative when a request falls behind its latency budget.
struct BackupEntry {
  int group = -1;
  double leftover_qps = 0.0;
  double exec_s = 0.0;
  double accuracy = 0.0;
};

/// Routing tables for the Frontend and every instance group.
struct RoutingPlan {
  /// Frontend -> root-task groups. Probabilities sum to <= 1; the deficit is
  /// demand the plan cannot place (shed at the frontend).
  std::vector<GroupRoute> frontend;
  /// group_routes[group][child_task] -> distribution over child groups.
  /// Probabilities per (group, child) sum to <= 1; deficit items are
  /// dropped at forward time (no capacity anywhere downstream).
  std::vector<std::map<int, std::vector<GroupRoute>>> group_routes;
  /// Per task: groups with leftover capacity, most accurate first.
  std::vector<std::vector<BackupEntry>> backup_per_task;
  /// Profiled batch execution latency per group (for rerouting math).
  std::vector<double> group_exec_s;
  /// Planned incoming QPS per group (diagnostics / tests).
  std::vector<double> group_incoming_qps;

  /// Dense [group][child_task] lookup over group_routes, rebuilt by
  /// finalize(): the per-forwarded-item path does one multiply-add and an
  /// array read instead of a map search. Semantics are preserved exactly:
  /// a missing (group, task) entry returns nullptr (stale-plan marker — the
  /// runtime falls back to any worker of the task), while an *empty* table
  /// is a real table meaning "drop" (no capacity anywhere downstream).
  const std::vector<GroupRoute>* routes_for(int group, int task) const {
    if (group < 0 || group >= static_cast<int>(group_routes.size()) ||
        task < 0 || task >= route_tasks_) {
      return nullptr;
    }
    const std::int32_t k =
        route_index_[static_cast<std::size_t>(group) *
                         static_cast<std::size_t>(route_tasks_) +
                     static_cast<std::size_t>(task)];
    return k < 0 ? nullptr : &route_tables_[static_cast<std::size_t>(k)];
  }
  /// (Re)builds the dense index from group_routes. The LoadBalancer calls
  /// this before returning; call it again after mutating group_routes by
  /// hand (tests).
  void finalize(int num_tasks);

 private:
  int route_tasks_ = 0;
  std::vector<std::int32_t> route_index_;  // [group * route_tasks_ + task]
  std::vector<std::vector<GroupRoute>> route_tables_;
};

/// Draws from a route distribution with uniform sample `r` in [0, 1).
/// Returns the chosen group, or -1 when the draw lands in the unplaced
/// remainder (probabilities sum < 1: intentional shed/drop). When the table
/// is exhaustive (probabilities sum to ~1) a draw past the accumulated tail
/// is floating-point rounding, not remainder, and falls back to the last
/// route instead of spuriously shedding.
int pick_route(const std::vector<GroupRoute>& routes, double r);

class LoadBalancer {
 public:
  /// `utilization_target` derates group capacities the same way the
  /// allocator derates them, so routing saturates groups at the planned
  /// utilization rather than at 100% of profiled throughput.
  LoadBalancer(const pipeline::PipelineGraph* graph,
               const ProfileTable* profiles, double utilization_target = 1.0);

  /// MostAccurateFirst (Algorithm 1) at instance-group granularity.
  /// `demand_qps` is the frontend demand estimate; `mult` the current
  /// multiplicative-factor estimates.
  RoutingPlan most_accurate_first(const AllocationPlan& plan,
                                  double demand_qps,
                                  const pipeline::MultFactorTable& mult) const;

 private:
  const pipeline::PipelineGraph* graph_;
  const ProfileTable* profiles_;
  double utilization_target_;
};

}  // namespace loki::serving
