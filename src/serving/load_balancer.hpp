// The Load Balancer (§5): turns the Resource Manager's allocation plan into
// routing tables via the MostAccurateFirst algorithm (Algorithm 1), and
// produces the backup tables (leftover-capacity lists) that opportunistic
// rerouting (§5.2) consults at runtime.
//
// Routing is computed at instance-group granularity — all replicas of one
// (task, variant, batch) config are interchangeable — and the runtime picks
// the least-loaded replica within the chosen group.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "pipeline/graph.hpp"
#include "serving/allocation.hpp"
#include "serving/types.hpp"

namespace loki::serving {

/// Probability of routing to one instance group (index into
/// AllocationPlan::instances).
struct GroupRoute {
  int group = -1;
  double probability = 0.0;
};

/// Backup-table entry (§5.1 end / §5.2): a group with leftover capacity,
/// its profiled execution time and accuracy, used to find a faster
/// alternative when a request falls behind its latency budget.
struct BackupEntry {
  int group = -1;
  double leftover_qps = 0.0;
  double exec_s = 0.0;
  double accuracy = 0.0;
};

/// Routing tables for the Frontend and every instance group.
struct RoutingPlan {
  /// Frontend -> root-task groups. Probabilities sum to <= 1; the deficit is
  /// demand the plan cannot place (shed at the frontend).
  std::vector<GroupRoute> frontend;
  /// group_routes[group][child_task] -> distribution over child groups.
  /// Probabilities per (group, child) sum to <= 1; deficit items are
  /// dropped at forward time (no capacity anywhere downstream).
  std::vector<std::map<int, std::vector<GroupRoute>>> group_routes;
  /// Per task: groups with leftover capacity, most accurate first.
  std::vector<std::vector<BackupEntry>> backup_per_task;
  /// Profiled batch execution latency per group (for rerouting math).
  std::vector<double> group_exec_s;
  /// Planned incoming QPS per group (diagnostics / tests).
  std::vector<double> group_incoming_qps;

  /// Dense [group][child_task] lookup over group_routes, rebuilt by
  /// finalize(): the per-forwarded-item path does one multiply-add and an
  /// array read instead of a map search. Semantics are preserved exactly:
  /// a missing (group, task) entry returns nullptr (stale-plan marker — the
  /// runtime falls back to any worker of the task), while an *empty* table
  /// is a real table meaning "drop" (no capacity anywhere downstream).
  const std::vector<GroupRoute>* routes_for(int group, int task) const {
    const std::int32_t k = table_index(group, task);
    return k < 0 ? nullptr : &route_tables_[static_cast<std::size_t>(k)];
  }

  /// Flattened draw view over one routing table: cumulative probability
  /// thresholds (the same left-to-right partial sums the linear pick_route
  /// accumulates, so every draw maps to the same group bit-for-bit) plus the
  /// group ids, both contiguous. pick() is branchless either way — a
  /// counting scan at realistic sizes, an O(log n) binary search for large
  /// tables — with no per-draw memory traffic beyond the two arrays.
  struct DrawTable {
    const double* cum = nullptr;
    const std::int32_t* grp = nullptr;
    std::uint32_t size = 0;

    bool empty() const { return size == 0; }

    /// Same contract as pick_route(routes, r): the chosen group, or -1 when
    /// the draw lands in the unplaced remainder; a draw past an exhaustive
    /// table's fp tail falls back to the last route instead of shedding.
    ///
    /// Locates the first threshold > r. Small tables (the common case:
    /// frontend and child tables hold a handful of groups) use a branchless
    /// counting scan — independent compares over a contiguous double array,
    /// one per cycle, with none of pick_route's serial fp-accumulate chain.
    /// Large tables switch to a branchless binary search (conditional add
    /// compiles to cmov), whose dependent-load chain only pays off once
    /// O(n) compares cost more than O(log n) serialized levels.
    int pick(double r) const {
      if (size == 0) return -1;
      std::uint32_t first_gt = 0;
      if (size <= 64) {
        for (std::uint32_t i = 0; i < size; ++i) {
          first_gt += (cum[i] <= r) ? 1u : 0u;
        }
      } else {
        std::uint32_t lo = 0;
        std::uint32_t len = size;
        while (len > 1) {
          const std::uint32_t half = len >> 1;
          lo += (cum[lo + half - 1] <= r) ? half : 0u;
          len -= half;
        }
        first_gt = lo + ((cum[lo] <= r) ? 1u : 0u);
      }
      if (first_gt < size) return grp[first_gt];
      if (cum[size - 1] >= 1.0 - 1e-9) return grp[size - 1];
      return -1;  // unplaced remainder
    }
  };

  /// Draw view of the frontend table.
  DrawTable frontend_table() const { return table_view(frontend_ref_); }
  /// Dense table id for (group, child task); -1 when the plan has no entry
  /// (stale-plan marker, same contract as routes_for returning nullptr).
  std::int32_t table_index(int group, int task) const {
    if (group < 0 || group >= static_cast<int>(group_routes.size()) ||
        task < 0 || task >= route_tasks_) {
      return -1;
    }
    return route_index_[static_cast<std::size_t>(group) *
                            static_cast<std::size_t>(route_tasks_) +
                        static_cast<std::size_t>(task)];
  }
  /// Draw view for a table id from table_index() (must be >= 0).
  DrawTable table_at(std::int32_t k) const {
    return table_view(draw_refs_[static_cast<std::size_t>(k)]);
  }

  /// (Re)builds the dense index and the flattened draw tables from
  /// frontend/group_routes. The LoadBalancer calls this before returning;
  /// call it again after mutating the tables by hand (tests).
  void finalize(int num_tasks);

 private:
  struct TableRef {
    std::uint32_t off = 0;
    std::uint32_t len = 0;
  };

  DrawTable table_view(TableRef ref) const {
    return DrawTable{draw_cum_.data() + ref.off, draw_grp_.data() + ref.off,
                     ref.len};
  }

  int route_tasks_ = 0;
  std::vector<std::int32_t> route_index_;  // [group * route_tasks_ + task]
  std::vector<std::vector<GroupRoute>> route_tables_;
  // Flattened draw tables (all tables concatenated; refs index into them).
  std::vector<double> draw_cum_;
  std::vector<std::int32_t> draw_grp_;
  std::vector<TableRef> draw_refs_;  // parallel to route_tables_
  TableRef frontend_ref_;
};

/// Draws from a route distribution with uniform sample `r` in [0, 1).
/// Returns the chosen group, or -1 when the draw lands in the unplaced
/// remainder (probabilities sum < 1: intentional shed/drop). When the table
/// is exhaustive (probabilities sum to ~1) a draw past the accumulated tail
/// is floating-point rounding, not remainder, and falls back to the last
/// route instead of spuriously shedding.
int pick_route(const std::vector<GroupRoute>& routes, double r);

class LoadBalancer {
 public:
  /// `utilization_target` derates group capacities the same way the
  /// allocator derates them, so routing saturates groups at the planned
  /// utilization rather than at 100% of profiled throughput.
  LoadBalancer(const pipeline::PipelineGraph* graph,
               const ProfileTable* profiles, double utilization_target = 1.0);

  /// MostAccurateFirst (Algorithm 1) at instance-group granularity.
  /// `demand_qps` is the frontend demand estimate; `mult` the current
  /// multiplicative-factor estimates.
  RoutingPlan most_accurate_first(const AllocationPlan& plan,
                                  double demand_qps,
                                  const pipeline::MultFactorTable& mult) const;

 private:
  const pipeline::PipelineGraph* graph_;
  const ProfileTable* profiles_;
  double utilization_target_;
};

}  // namespace loki::serving
