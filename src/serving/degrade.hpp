// Graceful degradation (ROADMAP item 4): SLO tiers with priority-aware
// shedding on the data plane, and a deadline-enforced fallback chain around
// the Resource Manager's plan() on the control plane. Both are off by
// default; with tiers disabled (or enabled over all-tier-0 traffic with
// inert watermarks) and the chain disabled, runs are bit-identical to the
// pre-degradation system — the shed helpers below are written so the
// single-tier case reproduces the exact floating-point comparisons the
// untiered path makes.
#pragma once

#include <array>

#include "pipeline/graph.hpp"
#include "serving/metrics.hpp"
#include "serving/types.hpp"

namespace loki::serving {

/// Data-plane tier policy. Tier 0 is strict, 1 standard, 2 best-effort;
/// shedding always falls lowest-tier-first (within a tier, latest-deadline
/// -first: admission-time shedding drops the newest arrival, whose deadline
/// is by construction the latest outstanding one in its tier).
struct TierPolicy {
  bool enabled = false;
  /// Per-tier admission watermark: shed a tier-k arrival when the tier's
  /// in-flight query count reaches depth_watermark[k] * max(1, planned
  /// servers). Strict tiers get deeper queues.
  std::array<double, kNumTiers> depth_watermark = {64.0, 32.0, 16.0};
  /// Per-tier deadline headroom for stranded-query retries: a retry is only
  /// worth dispatching if it can land with headroom_frac[k] * SLO to spare.
  /// Best-effort queries give up earlier, freeing capacity for strict ones.
  std::array<double, kNumTiers> headroom_frac = {0.0, 0.1, 0.25};
  /// Deterministic exponential backoff for stranded-query retries: attempt
  /// r is re-dispatched retry_backoff_s * 2^r after the strand (replaces
  /// the fixed fault_max_retries immediate-retry budget when tiers are on).
  double retry_backoff_s = 0.05;
  int max_retries = 4;
  /// EWMA smoothing for the observed per-tier arrival shares that drive the
  /// shed-probability fill. The first non-empty window seeds the shares
  /// exactly, and a window whose shares bit-match the current estimate is
  /// skipped (keeps single-tier traffic at exactly {1, 0, 0}).
  double share_ewma_alpha = 0.3;
  /// The frontend routing table can carry an unplaced remainder when the
  /// plan under-covers demand (e.g. while observed mult factors converge);
  /// a draw landing there normally sheds tier-blind. With this on, a
  /// strict-tier (tier 0) arrival hitting the remainder is force-routed to
  /// the least-loaded worker of the frontend task instead of shed — a
  /// bounded overcommit (tier 0 is a small share) that keeps routing-
  /// remainder shedding off the strict tier. Off by default: the remainder
  /// draw itself consumes no extra RNG, so enabling it changes outcomes
  /// only for queries that would otherwise have been shed.
  bool remainder_priority = false;
};

/// Control-plane fallback chain configuration. Rungs run in order — primary
/// MILP within the epoch budget, near-warm resolve, greedy, retain previous
/// plan — each gated by plan validation before install. Rung strategies are
/// non-owning; the experiment driver owns them.
struct FallbackConfig {
  bool enabled = false;
  /// Epoch plan deadline (seconds of reported solve wall time). Rungs 0-1
  /// whose solve exceeds it fall through; <= 0 disables the deadline. The
  /// check is post-hoc (the solve is not preempted) and wall-clock, so a
  /// tight deadline trades reproducibility for responsiveness — tests force
  /// a miss with an epsilon deadline instead of relying on host speed.
  double deadline_s = 0.0;
  AllocationStrategy* near_warm = nullptr;
  AllocationStrategy* greedy = nullptr;
};

/// Per-tier serve probabilities for overload shedding: the serve budget
/// `serve_frac` (the plan's served fraction) is granted highest-tier-first
/// across the observed tier shares, so shedding falls strictly lowest-tier
/// -first. A zero-share tier serves iff budget remains. With shares
/// {1, 0, 0} the tier-0 probability equals `serve_frac` bit-for-bit, so an
/// armed single-tier run sheds on the exact comparison the untiered path
/// uses.
std::array<double, kNumTiers> tier_serve_probs(
    double serve_frac, const std::array<double, kNumTiers>& shares);

/// Per-tier shed probabilities for degraded-mode (fault) shedding: the shed
/// budget `shed_frac` is taken lowest-tier-first across the shares. Dual of
/// tier_serve_probs, phrased as shed probabilities so the single-tier tier-0
/// value equals `shed_frac` bit-for-bit (the degraded path draws
/// bernoulli(shed) rather than comparing against a serve fraction).
std::array<double, kNumTiers> tier_shed_probs(
    double shed_frac, const std::array<double, kNumTiers>& shares);

/// Plan-validation gate run before install: capacity/shape/budget sanity.
/// Returns nullptr when the plan is installable, else a static reason
/// string (for counters/logs). `cluster_size` is the effective placement
/// capacity of the epoch (already shrunk by surviving workers).
const char* validate_plan(const AllocationPlan& plan,
                          const pipeline::PipelineGraph& graph,
                          int cluster_size);

/// What one chained plan() call did. rung: 0 primary, 1 near-warm,
/// 2 greedy, 3 retained previous plan.
struct FallbackOutcome {
  PlanResult result;
  int rung = 0;
  /// Rungs fallen through (deadline misses + validation rejects).
  int fallbacks = 0;
  /// Validation-gate rejections among those.
  int rejects = 0;
  bool retained_previous = false;
};

/// Deadline-enforced fallback chain around an allocation strategy. A
/// pathological solve can degrade plan quality but can never stall the
/// epoch loop (rungs 2-3 are cheap and always complete) or corrupt serving
/// (every rung passes the validation gate; the terminal rung reuses the
/// already-validated previous plan).
class PlanFallbackChain {
 public:
  /// All pointers non-owning. `cluster_size` is the configured cluster; the
  /// per-call effective capacity shrinks with PlanRequest::available_workers.
  PlanFallbackChain(AllocationStrategy* primary, const FallbackConfig& cfg,
                    const pipeline::PipelineGraph* graph, int cluster_size)
      : primary_(primary), cfg_(cfg), graph_(graph),
        cluster_size_(cluster_size) {}

  FallbackOutcome plan(const PlanRequest& req);

 private:
  AllocationStrategy* primary_;
  FallbackConfig cfg_;
  const pipeline::PipelineGraph* graph_;
  int cluster_size_;
};

}  // namespace loki::serving
