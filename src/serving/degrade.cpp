#include "serving/degrade.hpp"

#include <cmath>
#include <utility>
#include <vector>

namespace loki::serving {

std::array<double, kNumTiers> tier_serve_probs(
    double serve_frac, const std::array<double, kNumTiers>& shares) {
  if (serve_frac < 0.0) serve_frac = 0.0;
  if (serve_frac > 1.0) serve_frac = 1.0;
  std::array<double, kNumTiers> probs{};
  double budget = serve_frac;  // serve budget, granted highest-tier-first
  for (int k = 0; k < kNumTiers; ++k) {
    const double share = shares[k];
    if (share > 0.0) {
      const double take = budget < share ? budget : share;
      probs[k] = take / share;  // share == 1 reproduces serve_frac exactly
      budget -= take;
    } else {
      probs[k] = budget > 0.0 ? 1.0 : 0.0;
    }
  }
  return probs;
}

std::array<double, kNumTiers> tier_shed_probs(
    double shed_frac, const std::array<double, kNumTiers>& shares) {
  if (shed_frac < 0.0) shed_frac = 0.0;
  if (shed_frac > 1.0) shed_frac = 1.0;
  std::array<double, kNumTiers> probs{};
  double budget = shed_frac;  // shed budget, taken lowest-tier-first
  for (int k = kNumTiers - 1; k >= 0; --k) {
    const double share = shares[k];
    if (share > 0.0) {
      const double take = budget < share ? budget : share;
      probs[k] = take / share;  // share == 1 reproduces shed_frac exactly
      budget -= take;
    } else {
      probs[k] = budget > 0.0 ? 1.0 : 0.0;
    }
  }
  return probs;
}

const char* validate_plan(const AllocationPlan& plan,
                          const pipeline::PipelineGraph& graph,
                          int cluster_size) {
  if (!plan.feasible) return "infeasible";
  if (!(plan.served_fraction >= 0.0) || plan.served_fraction > 1.0 + 1e-9) {
    return "served_fraction out of range";
  }
  if (!(plan.expected_accuracy >= 0.0) ||
      plan.expected_accuracy > 1.0 + 1e-9) {
    return "expected_accuracy out of range";
  }
  const int num_tasks = graph.num_tasks();
  std::vector<int> per_task(static_cast<std::size_t>(num_tasks), 0);
  int total = 0;
  for (const InstanceConfig& ic : plan.instances) {
    if (ic.task < 0 || ic.task >= num_tasks) return "instance task out of range";
    if (ic.variant < 0) return "instance variant out of range";
    if (ic.batch < 1) return "instance batch out of range";
    if (ic.replicas < 0) return "negative replica count";
    per_task[static_cast<std::size_t>(ic.task)] += ic.replicas;
    total += ic.replicas;
  }
  if (total > cluster_size) return "plan exceeds cluster capacity";
  // Serving any positive fraction needs every pipeline stage hosted; a
  // served_fraction ~ 0 overload plan may legitimately place nothing.
  if (plan.served_fraction > 1e-9) {
    for (int t = 0; t < num_tasks; ++t) {
      if (per_task[static_cast<std::size_t>(t)] <= 0) {
        return "unhosted task";
      }
    }
  }
  for (const auto& kv : plan.latency_budget_s) {
    if (!(kv.second > 0.0)) return "non-positive latency budget";
  }
  for (const PathFlow& f : plan.flows) {
    if (!(f.fraction >= 0.0) || f.fraction > 1.0 + 1e-9 ||
        !std::isfinite(f.fraction)) {
      return "path flow out of range";
    }
  }
  return nullptr;
}

FallbackOutcome PlanFallbackChain::plan(const PlanRequest& req) {
  FallbackOutcome out;
  const int cap =
      effective_cluster_size(cluster_size_, req, graph_->num_tasks());
  AllocationStrategy* rungs[3] = {primary_, cfg_.near_warm, cfg_.greedy};
  for (int r = 0; r < 3; ++r) {
    if (rungs[r] == nullptr) continue;
    PlanResult res = rungs[r]->plan(req);
    // The deadline gates the solver rungs; greedy (rung 2) always completes
    // within any sane epoch and is exempt so the chain cannot livelock on a
    // slow host.
    if (r < 2 && cfg_.deadline_s > 0.0 &&
        res.plan.solve_time_s > cfg_.deadline_s) {
      ++out.fallbacks;
      continue;
    }
    if (const char* reason = validate_plan(res.plan, *graph_, cap)) {
      (void)reason;
      ++out.rejects;
      ++out.fallbacks;
      continue;
    }
    out.rung = r;
    out.result = std::move(res);
    return out;
  }
  // Terminal rung: retain the previously installed (already validated)
  // plan. With no previous plan the epoch yields an infeasible placeholder
  // and the runtime keeps whatever it was doing — degrade, never corrupt.
  out.rung = 3;
  out.retained_previous = true;
  out.result.epoch = req.epoch;
  if (req.previous_plan != nullptr) {
    out.result.plan = *req.previous_plan;
    out.result.plan.solve_time_s = 0.0;
    out.result.plan.solver = SolverStats{};
  } else {
    out.result.plan.feasible = false;
  }
  return out;
}

}  // namespace loki::serving
