// Metrics pipeline: per-query accounting plus the windowed timeseries that
// reproduce the panels of Figs. 5 and 6 (demand, system accuracy, cluster
// utilization, SLO violation ratio) and the summary numbers quoted in §6.
#pragma once

#include <array>
#include <cstdint>

#include "common/stats.hpp"

namespace loki::serving {

/// Terminal states of a client query. A query violates its SLO if it was
/// dropped (any part) or finished past its deadline (§6.1 definition).
enum class QueryOutcome { kOnTime, kLate, kDropped, kShed };

/// Why a query was shed or dropped (fault-subsystem attribution; plain
/// capacity decisions — overload shedding, early dropping — use kCapacity).
enum class LossCause { kCapacity, kWorkerFailure, kDegradedOverload };

/// SLO tiers: 0 = strict, 1 = standard, 2 = best-effort. Queries without an
/// explicit tier are tier 0, which keeps single-tier runs on the exact
/// pre-tier accounting path.
inline constexpr int kNumTiers = 3;

/// Per-tier terminal accounting. The reconciliation invariant holds per
/// tier: arrivals == completions + drops (shed is the subset of drops taken
/// by admission/overload/degraded shedding rather than early dropping).
struct TierCounts {
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  std::uint64_t on_time = 0;
  std::uint64_t late = 0;
  std::uint64_t drops = 0;
  std::uint64_t shed = 0;
  /// Subset of `shed` lost to worker failure (crash-stranded queries whose
  /// deadline could not be met on retry) rather than to admission/overload
  /// policy. `shed == shed_failure` means the shedding policy never touched
  /// this tier — the invariant the strict tier holds under flash crowds.
  std::uint64_t shed_failure = 0;
};

class Metrics {
 public:
  explicit Metrics(double window_s = 10.0) : window_s_(window_s) {}

  void record_arrival(double t, int tier = 0);
  /// Terminal accounting for one client query. `accuracy` is the mean
  /// profiled end-to-end accuracy over the sinks it completed (ignored for
  /// dropped/shed queries). `tier` attributes the outcome to an SLO tier;
  /// callers that predate tiers default to tier 0.
  void record_outcome(double t, QueryOutcome outcome, double accuracy,
                      double latency_s,
                      LossCause cause = LossCause::kCapacity, int tier = 0);
  /// Periodic cluster snapshot: servers in use / total.
  void record_utilization(double t, int servers_used, int cluster_size);
  void record_demand_estimate(double t, double qps);
  void record_allocation(double t, double solve_time_s, int mode);
  /// Intermediate-result forwards committed to downstream workers (fan-out
  /// volume; the per-batch bookkeeping that used to be computed and thrown
  /// away in the runtime).
  void record_forwards(std::uint64_t n) { forwards_ += n; }
  /// A worker paid a model-load delay to change its hosted (task, variant).
  void record_model_swap() { ++model_swaps_; }

  // --- Summary accessors ---
  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t completions() const { return completions_; }
  std::uint64_t violations() const { return violations_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t shed() const { return shed_; }
  std::uint64_t late() const { return late_; }
  /// Shed-by-cause attribution (the fault subsystem's reconciliation
  /// invariant: arrivals == completions + drops, with drops split by cause).
  std::uint64_t shed_by_failure() const { return shed_failure_; }
  std::uint64_t shed_by_degraded() const { return shed_degraded_; }
  std::uint64_t drops_by_failure() const { return drops_failure_; }
  std::uint64_t forwards() const { return forwards_; }
  std::uint64_t model_swaps() const { return model_swaps_; }
  /// Per-tier splits of the totals above (tier clamped into [0, kNumTiers)).
  const std::array<TierCounts, kNumTiers>& tiers() const { return tiers_; }
  const TierCounts& tier(int t) const { return tiers_[clamp_tier(t)]; }
  /// Per-tier SLO attainment: on-time completions over terminal queries
  /// (completions + drops) of that tier; 1.0 when the tier saw no queries.
  double tier_attainment(int t) const;
  double slo_violation_ratio() const;
  /// Mean profiled accuracy over queries served on time or late.
  double mean_accuracy() const { return accuracy_.mean(); }
  double mean_latency_s() const { return latency_.mean(); }
  double p99_latency_s() const { return latency_.quantile(0.99); }
  double mean_servers_used() const { return servers_.mean(); }

  // --- Timeseries (windowed by the runtime as events happen) ---
  const TimeSeries& demand_series() const { return demand_series_; }
  const TimeSeries& accuracy_series() const { return accuracy_series_; }
  const TimeSeries& violation_series() const { return violation_series_; }
  const TimeSeries& utilization_series() const { return utilization_series_; }
  const TimeSeries& servers_series() const { return servers_series_; }

  const PercentileTracker& latency() const { return latency_; }
  double window_s() const { return window_s_; }

  /// Flushes the current partial window into the series (call at end of
  /// run so the tail shows up).
  void flush(double t);

  /// Folds another (flushed) Metrics into this one — the parallel-sim-mode
  /// reduction over per-shard serving systems. Counters and sample
  /// distributions merge exactly. Timeseries combine pointwise on the shared
  /// window grid: count-like series (demand, servers, utilization·cluster)
  /// sum; ratio series (accuracy, violation, utilization) take the
  /// across-shard mean, which is exact only when shards carry equal weight —
  /// round-robin arrival splitting makes them near-equal (documented
  /// parallel-mode caveat in the README).
  void merge(const Metrics& other);

 private:
  void roll(double t);
  static int clamp_tier(int t) {
    return t < 0 ? 0 : (t >= kNumTiers ? kNumTiers - 1 : t);
  }

  double window_s_;
  double window_start_ = 0.0;

  // Totals.
  std::uint64_t arrivals_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t late_ = 0;
  std::uint64_t shed_failure_ = 0;
  std::uint64_t shed_degraded_ = 0;
  std::uint64_t drops_failure_ = 0;
  std::uint64_t forwards_ = 0;
  std::uint64_t model_swaps_ = 0;
  std::array<TierCounts, kNumTiers> tiers_{};
  RunningStats accuracy_;
  PercentileTracker latency_;
  RunningStats servers_;

  // Current window accumulators.
  std::uint64_t w_arrivals_ = 0;
  std::uint64_t w_done_ = 0;
  std::uint64_t w_violations_ = 0;
  RunningStats w_accuracy_;

  TimeSeries demand_series_;
  TimeSeries accuracy_series_;
  TimeSeries violation_series_;
  TimeSeries utilization_series_;
  TimeSeries servers_series_;
};

}  // namespace loki::serving
