#include "serving/exact_milp.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "solver/milp.hpp"

namespace loki::serving {

ExactMilpFormulation::ExactMilpFormulation(AllocatorConfig cfg,
                                           const pipeline::PipelineGraph* graph,
                                           ProfileTable profiles)
    : cfg_(cfg), graph_(graph), profiles_(std::move(profiles)) {
  LOKI_CHECK(graph_ != nullptr);
}

ExactMilpResult ExactMilpFormulation::solve_hardware(
    double demand_qps, const pipeline::MultFactorTable& mult) const {
  return solve(demand_qps, mult, /*hardware_only=*/true);
}

ExactMilpResult ExactMilpFormulation::solve_accuracy(
    double demand_qps, const pipeline::MultFactorTable& mult) const {
  return solve(demand_qps, mult, /*hardware_only=*/false);
}

ExactMilpResult ExactMilpFormulation::solve(
    double demand_qps, const pipeline::MultFactorTable& mult,
    bool hardware_only) const {
  using solver::Constraint;
  using solver::LpProblem;
  using solver::Relation;
  using solver::Sense;
  using solver::VarType;

  const auto& g = *graph_;
  ExactMilpResult out;

  // Allowed variants per task (hardware mode pins the most accurate one).
  std::vector<std::vector<int>> variants(static_cast<std::size_t>(g.num_tasks()));
  for (int t = 0; t < g.num_tasks(); ++t) {
    if (hardware_only) {
      variants[static_cast<std::size_t>(t)] = {g.task(t).catalog.most_accurate()};
    } else {
      for (int k = 0; k < g.task(t).catalog.size(); ++k) {
        variants[static_cast<std::size_t>(t)].push_back(k);
      }
    }
  }

  LpProblem lp(Sense::kMinimize);
  const double S = static_cast<double>(cfg_.cluster_size);

  // z(t,k,b), n(t,k,b) and l(t,k) bookkeeping.
  struct Cfg {
    int variant;
    int batch;
    double q;    // derated throughput
    double lat;  // profiled latency
    int z = -1;
    int n = -1;
  };
  std::vector<std::vector<std::vector<Cfg>>> cfgs(
      static_cast<std::size_t>(g.num_tasks()));
  double max_lat_sum = 0.0;
  for (int t = 0; t < g.num_tasks(); ++t) {
    cfgs[static_cast<std::size_t>(t)].resize(
        static_cast<std::size_t>(g.task(t).catalog.size()));
    double task_max = 0.0;
    for (int k : variants[static_cast<std::size_t>(t)]) {
      const auto& prof =
          profiles_[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)];
      for (int bi = 0; bi < prof.size(); ++bi) {
        Cfg c;
        c.variant = k;
        c.batch = prof.batches[static_cast<std::size_t>(bi)];
        c.q = prof.throughput_qps[static_cast<std::size_t>(bi)] *
              cfg_.utilization_target;
        c.lat = prof.latency_s[static_cast<std::size_t>(bi)];
        c.z = lp.add_variable(
            "z_" + std::to_string(t) + "_" + std::to_string(k) + "_" +
                std::to_string(c.batch),
            0.0, 1.0, 0.0, VarType::kBinary);
        c.n = lp.add_variable(
            "n_" + std::to_string(t) + "_" + std::to_string(k) + "_" +
                std::to_string(c.batch),
            0.0, solver::kInf, 0.0, VarType::kInteger);
        // n <= S * z (only the selected batch hosts instances).
        lp.add_constraint(
            {{{c.n, 1.0}, {c.z, -S}}, Relation::kLe, 0.0, "link"});
        task_max = std::max(task_max, c.lat);
        cfgs[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)]
            .push_back(c);
      }
      // Eq. 4: one batch size per variant.
      Constraint one;
      for (const auto& c :
           cfgs[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)]) {
        one.terms.push_back({c.z, 1.0});
      }
      one.rel = Relation::kLe;
      one.rhs = 1.0;
      one.name = "one_batch";
      lp.add_constraint(std::move(one));
    }
    max_lat_sum += task_max;
  }

  // Per-sink variant-level paths with flow c(p) and indicator I(p).
  const auto sinks = g.sinks();
  const double sink_weight = 1.0 / static_cast<double>(sinks.size());
  std::vector<std::vector<pipeline::VariantPath>> sink_paths;
  std::vector<std::vector<int>> c_var(sinks.size()), i_var(sinks.size());
  for (std::size_t si = 0; si < sinks.size(); ++si) {
    auto all = pipeline::enumerate_variant_paths(g, sinks[si]);
    // Restrict to allowed variants (hardware mode).
    std::vector<pipeline::VariantPath> kept;
    for (auto& p : all) {
      bool ok = true;
      for (std::size_t i = 0; i < p.tasks.size() && ok; ++i) {
        const auto& vs = variants[static_cast<std::size_t>(p.tasks[i])];
        ok = std::find(vs.begin(), vs.end(), p.variants[i]) != vs.end();
      }
      if (ok) kept.push_back(std::move(p));
    }
    sink_paths.push_back(std::move(kept));
    for (std::size_t pi = 0; pi < sink_paths[si].size(); ++pi) {
      c_var[si].push_back(lp.add_variable(
          "c_" + std::to_string(si) + "_" + std::to_string(pi), 0.0,
          solver::kInf, 0.0));
      i_var[si].push_back(lp.add_variable(
          "I_" + std::to_string(si) + "_" + std::to_string(pi), 0.0, 1.0, 0.0,
          VarType::kBinary));
      // c(p) <= I(p): a path carries flow only if marked used.
      lp.add_constraint({{{c_var[si].back(), 1.0}, {i_var[si].back(), -1.0}},
                         Relation::kLe,
                         0.0,
                         "use"});
    }
    // Flow: all of the sink's demand is assigned.
    Constraint flow;
    for (int v : c_var[si]) flow.terms.push_back({v, 1.0});
    flow.rel = Relation::kEq;
    flow.rhs = 1.0;
    flow.name = "flow";
    lp.add_constraint(std::move(flow));
  }

  // Prefix consistency across sinks (same construction as the production
  // allocator, at variant level).
  for (int t = 0; t < g.num_tasks(); ++t) {
    const auto below = g.sinks_below(t);
    if (below.size() < 2) continue;
    std::vector<std::size_t> below_idx;
    for (std::size_t si = 0; si < sinks.size(); ++si) {
      if (std::find(below.begin(), below.end(), sinks[si]) != below.end()) {
        below_idx.push_back(si);
      }
    }
    for (const auto& prefix : pipeline::enumerate_variant_prefixes(g, t)) {
      const std::size_t s0 = below_idx[0];
      for (std::size_t bi = 1; bi < below_idx.size(); ++bi) {
        const std::size_t si = below_idx[bi];
        Constraint c;
        for (std::size_t pi = 0; pi < sink_paths[si].size(); ++pi) {
          if (pipeline::path_extends(sink_paths[si][pi], prefix)) {
            c.terms.push_back({c_var[si][pi], 1.0});
          }
        }
        for (std::size_t pi = 0; pi < sink_paths[s0].size(); ++pi) {
          if (pipeline::path_extends(sink_paths[s0][pi], prefix)) {
            c.terms.push_back({c_var[s0][pi], -1.0});
          }
        }
        if (c.terms.empty()) continue;
        c.rel = Relation::kEq;
        c.rhs = 0.0;
        c.name = "consistency";
        lp.add_constraint(std::move(c));
      }
    }
  }

  // Capacity (Eq. 2), counted once via the canonical sink below each task.
  for (int t = 0; t < g.num_tasks(); ++t) {
    const auto below = g.sinks_below(t);
    std::size_t s0 = 0;
    for (std::size_t si = 0; si < sinks.size(); ++si) {
      if (sinks[si] == below.front()) s0 = si;
    }
    const auto tpath = g.task_path_to(sinks[s0]);
    std::size_t pos = 0;
    for (std::size_t i = 0; i < tpath.size(); ++i) {
      if (tpath[i] == t) pos = i;
    }
    for (int k : variants[static_cast<std::size_t>(t)]) {
      Constraint c;
      for (std::size_t pi = 0; pi < sink_paths[s0].size(); ++pi) {
        const auto& p = sink_paths[s0][pi];
        if (p.variants[pos] != k) continue;
        const double m = pipeline::path_multiplier(g, mult, p, pos);
        c.terms.push_back({c_var[s0][pi], demand_qps * m});
      }
      for (const auto& cf :
           cfgs[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)]) {
        c.terms.push_back({cf.n, -cf.q});
      }
      c.rel = Relation::kLe;
      c.rhs = 0.0;
      c.name = "cap";
      lp.add_constraint(std::move(c));
    }
  }

  // Latency (Eq. 5-7): big-M over used paths, l(t,k) = sum_b z*lat.
  const double budget = cfg_.slo_s * cfg_.queue_factor;
  const double kBigM = max_lat_sum + budget;
  for (std::size_t si = 0; si < sinks.size(); ++si) {
    const auto tpath = g.task_path_to(sinks[si]);
    const double hops = static_cast<double>(tpath.size()) + 1.0;
    const double limit = budget - cfg_.comm_latency_s * hops;
    for (std::size_t pi = 0; pi < sink_paths[si].size(); ++pi) {
      const auto& p = sink_paths[si][pi];
      Constraint c;  // sum l(t,k) + M*I(p) <= limit + M
      for (std::size_t i = 0; i < p.tasks.size(); ++i) {
        for (const auto& cf : cfgs[static_cast<std::size_t>(p.tasks[i])]
                                  [static_cast<std::size_t>(p.variants[i])]) {
          c.terms.push_back({cf.z, cf.lat});
        }
      }
      c.terms.push_back({i_var[si][pi], kBigM});
      c.rel = Relation::kLe;
      c.rhs = limit + kBigM;
      c.name = "latency";
      lp.add_constraint(std::move(c));
      // A used path needs a configured batch for each of its variants.
      for (std::size_t i = 0; i < p.tasks.size(); ++i) {
        Constraint need;
        for (const auto& cf : cfgs[static_cast<std::size_t>(p.tasks[i])]
                                  [static_cast<std::size_t>(p.variants[i])]) {
          need.terms.push_back({cf.z, 1.0});
        }
        need.terms.push_back({i_var[si][pi], -1.0});
        need.rel = Relation::kGe;
        need.rhs = 0.0;
        need.name = "configured";
        lp.add_constraint(std::move(need));
      }
    }
  }

  // Cluster size (Eq. 3) + one instance per task.
  {
    Constraint c;
    for (int t = 0; t < g.num_tasks(); ++t) {
      for (int k : variants[static_cast<std::size_t>(t)]) {
        for (const auto& cf :
             cfgs[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)]) {
          c.terms.push_back({cf.n, 1.0});
        }
      }
    }
    c.rel = Relation::kLe;
    c.rhs = S;
    c.name = "cluster";
    lp.add_constraint(std::move(c));
  }
  for (int t = 0; t < g.num_tasks(); ++t) {
    Constraint c;
    for (int k : variants[static_cast<std::size_t>(t)]) {
      for (const auto& cf :
           cfgs[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)]) {
        c.terms.push_back({cf.n, 1.0});
      }
    }
    c.rel = Relation::kGe;
    c.rhs = 1.0;
    c.name = "host";
    lp.add_constraint(std::move(c));
  }

  // Objective.
  if (hardware_only) {
    for (int t = 0; t < g.num_tasks(); ++t) {
      for (int k : variants[static_cast<std::size_t>(t)]) {
        for (const auto& cf :
             cfgs[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)]) {
          lp.set_objective_coeff(cf.n, 1.0);
        }
      }
    }
  } else {
    lp.set_sense(Sense::kMaximize);
    for (std::size_t si = 0; si < sinks.size(); ++si) {
      for (std::size_t pi = 0; pi < sink_paths[si].size(); ++pi) {
        lp.set_objective_coeff(
            c_var[si][pi],
            sink_weight * pipeline::path_accuracy(g, sink_paths[si][pi]));
      }
    }
  }

  solver::MilpOptions opts;
  opts.max_nodes = 60000;
  opts.time_limit_s = 30.0;
  opts.gap_tol = 1e-6;
  solver::BranchAndBound bnb(opts);
  const auto sol = bnb.solve(lp);
  out.status = sol.status;
  out.stats.add(sol);
  if (sol.status != solver::MilpStatus::kOptimal &&
      sol.status != solver::MilpStatus::kFeasible) {
    return out;
  }
  out.feasible = true;
  out.mode = hardware_only ? ScalingMode::kHardware : ScalingMode::kAccuracy;
  out.objective = sol.objective;
  int servers = 0;
  for (int t = 0; t < g.num_tasks(); ++t) {
    for (int k : variants[static_cast<std::size_t>(t)]) {
      for (const auto& cf :
           cfgs[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)]) {
        servers += static_cast<int>(
            std::lround(sol.values[static_cast<std::size_t>(cf.n)]));
      }
    }
  }
  out.servers_used = servers;
  double acc = 0.0;
  for (std::size_t si = 0; si < sinks.size(); ++si) {
    for (std::size_t pi = 0; pi < sink_paths[si].size(); ++pi) {
      acc += sink_weight * sol.values[static_cast<std::size_t>(c_var[si][pi])] *
             pipeline::path_accuracy(g, sink_paths[si][pi]);
    }
  }
  out.expected_accuracy = acc;
  return out;
}

}  // namespace loki::serving
