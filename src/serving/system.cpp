#include "serving/system.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>

#include "common/check.hpp"
#include "common/log.hpp"
#include "fault/injector.hpp"

namespace loki::serving {

std::string to_string(DropPolicy p) {
  switch (p) {
    case DropPolicy::kNone: return "no-early-dropping";
    case DropPolicy::kLastTask: return "last-task-dropping";
    case DropPolicy::kPerTask: return "per-task-dropping";
    case DropPolicy::kOpportunisticReroute: return "opportunistic-rerouting";
  }
  return "?";
}

ServingSystem::ServingSystem(sim::Simulation* sim,
                             const pipeline::PipelineGraph* graph,
                             ProfileTable profiles,
                             AllocationStrategy* strategy, SystemConfig cfg)
    : sim_(sim),
      graph_(graph),
      profiles_(std::move(profiles)),
      strategy_(strategy),
      cfg_(cfg),
      lb_(graph, &profiles_, cfg.allocator.utilization_target),
      metrics_(cfg.metrics_window_s),
      demand_(cfg.demand),
      rng_routing_(Rng(cfg.seed).stream("routing")),
      rng_mult_(Rng(cfg.seed).stream("mult")),
      rng_jitter_(Rng(cfg.seed).stream("jitter")),
      rng_shed_(Rng(cfg.seed).stream("shed")),
      rng_fault_(Rng(cfg.seed).stream("fault")) {
  // strategy_ may be nullptr for externally-planned systems (coordinated
  // sharding); start() / run_resource_manager() check it.
  LOKI_CHECK(sim_ && graph_);
  obs::Registry& reg =
      cfg_.registry != nullptr ? *cfg_.registry : obs::Registry::global();
  tracer_ = obs::QueryTracer(&reg, cfg_.metric_prefix, cfg_.trace);
  c_admitted_ = reg.counter(cfg_.metric_prefix + ".admitted");
  c_stage_enqueued_ = reg.counter(cfg_.metric_prefix + ".stage.enqueued");
  c_stage_queue_ns_ = reg.counter(cfg_.metric_prefix + ".stage.queue_wait_ns");
  c_stage_batches_ = reg.counter(cfg_.metric_prefix + ".stage.batches");
  c_stage_batch_items_ =
      reg.counter(cfg_.metric_prefix + ".stage.batch_items");
  c_stage_execute_ns_ = reg.counter(cfg_.metric_prefix + ".stage.execute_ns");
  c_stage_swaps_ = reg.counter(cfg_.metric_prefix + ".stage.swaps");
  c_stage_swap_ns_ =
      reg.counter(cfg_.metric_prefix + ".stage.swap_stall_ns");

  // Fault subsystem: armed only when the config asks for it. When inert,
  // nothing below registers metrics, sizes state, or draws randomness —
  // default-configured systems stay bit-identical to a build without it.
  fault_active_ = !cfg_.fault_plan.empty() || cfg_.detector.enabled;
  if (fault_active_) {
    cfg_.fault_plan.normalize();
    fault::DetectorConfig dc = cfg_.detector;
    dc.enabled = true;
    if (dc.heartbeat_period_s <= 0.0) {
      dc.heartbeat_period_s = cfg_.heartbeat_period_s;
    }
    detector_ = fault::FailureDetector(dc, cfg_.allocator.cluster_size);
    const std::size_t n =
        static_cast<std::size_t>(cfg_.allocator.cluster_size);
    worker_quarantined_.assign(n, 0);
    hb_suppressed_.assign(n, 0);
    crash_time_.assign(n, -1.0);
    dead_since_.assign(n, -1.0);
    stranded_.resize(n);
    const std::string fp = cfg_.metric_prefix + ".fault.";
    c_fault_crashes_ = reg.counter(fp + "crashes");
    c_fault_recoveries_ = reg.counter(fp + "recoveries");
    c_fault_suspects_ = reg.counter(fp + "suspects");
    c_fault_dead_ = reg.counter(fp + "dead");
    c_fault_stranded_retried_ = reg.counter(fp + "stranded_retried");
    c_fault_stranded_dropped_ = reg.counter(fp + "stranded_dropped");
    c_fault_degraded_shed_ = reg.counter(fp + "degraded_shed");
    c_fault_net_drops_ = reg.counter(fp + "net_drops");
    c_fault_replans_ = reg.counter(fp + "replans");
    c_fault_stale_heartbeats_ = reg.counter(fp + "stale_heartbeats");
    h_fault_detect_ns_ = reg.histogram(fp + "detect_ns");
    h_fault_recovery_ns_ = reg.histogram(fp + "recovery_ns");
  }

  // Graceful degradation: counters armed only when tiers or the fallback
  // chain are enabled — default-configured systems register nothing, size
  // nothing, and draw nothing extra (passivity, like the fault subsystem).
  tiers_active_ = cfg_.tiers.enabled;
  if (tiers_active_ || cfg_.fallback.enabled) {
    const std::string dp = cfg_.metric_prefix + ".degrade.";
    c_degrade_admission_shed_ = reg.counter(dp + "admission_shed");
    c_degrade_overload_shed_ = reg.counter(dp + "overload_shed");
    c_degrade_remainder_rescued_ = reg.counter(dp + "remainder_rescued");
    c_degrade_retries_ = reg.counter(dp + "retries");
    c_degrade_retry_given_up_ = reg.counter(dp + "retry_given_up");
    c_degrade_plan_fallbacks_ = reg.counter(dp + "plan_fallbacks");
    c_degrade_plan_rejects_ = reg.counter(dp + "plan_rejects");
    c_degrade_plan_retained_ = reg.counter(dp + "plan_retained");
  }
  if (cfg_.fallback.enabled && strategy != nullptr) {
    fallback_chain_ = std::make_unique<PlanFallbackChain>(
        strategy, cfg_.fallback, graph, cfg_.allocator.cluster_size);
  }

  mult_estimates_ = pipeline::default_mult_factors(*graph_);
  obs_in_.assign(mult_estimates_.size(), {});
  obs_out_.assign(mult_estimates_.size(), {});
  for (std::size_t t = 0; t < mult_estimates_.size(); ++t) {
    obs_in_[t].assign(mult_estimates_[t].size(), 0.0);
    obs_out_[t].assign(mult_estimates_[t].size(), 0.0);
  }
  const std::size_t ntasks = static_cast<std::size_t>(graph_->num_tasks());
  task_window_arrivals_.assign(ntasks, 0.0);

  // Cache the graph lookups the per-item path repeats (root() and
  // branch_ratio() scan inside the graph; the cached doubles are the same
  // values, so sampling stays bit-identical).
  root_task_ = graph_->root();
  branch_ratios_.resize(ntasks);
  for (std::size_t t = 0; t < ntasks; ++t) {
    for (int c : graph_->children(static_cast<int>(t))) {
      branch_ratios_[t].push_back(
          graph_->branch_ratio(static_cast<int>(t), c));
    }
  }
  budget_off_.assign(ntasks + 1, 0);
  for (std::size_t t = 0; t < ntasks; ++t) {
    budget_off_[t + 1] =
        budget_off_[t] + graph_->task(static_cast<int>(t)).catalog.size();
  }
  budget_lut_.assign(budget_off_[ntasks], -1.0);

  const std::size_t cluster =
      static_cast<std::size_t>(cfg_.allocator.cluster_size);
  // Sized before binding: workers keep raw pointers into worker_load_.
  worker_load_.assign(cluster, cluster::Worker::kLoadCellInactive);
  worker_task_.assign(cluster, -1);
  workers_.reserve(cluster);
  for (int i = 0; i < cfg_.allocator.cluster_size; ++i) {
    auto w = std::make_unique<cluster::Worker>(i, sim_);
    w->bind_load_cell(&worker_load_[static_cast<std::size_t>(i)]);
    w->set_tracer(&tracer_);
    // Strict tiers jump best-effort backlog at batch formation; with tiers
    // off (or single-tier traffic) the formation order is plain FIFO.
    w->set_tier_priority(tiers_active_);
    w->set_batch_done([this](cluster::Worker& wk,
                             std::vector<cluster::WorkItem>& items,
                             const cluster::Worker::BatchContext& ctx) {
      on_batch_done(wk, items, ctx);
    });
    w->set_dropped_sink([this](cluster::Worker& wk,
                               std::vector<cluster::WorkItem>& items) {
      on_dropped_items(wk, items);
    });
    if (cfg_.drop_policy == DropPolicy::kLastTask ||
        cfg_.drop_policy == DropPolicy::kOpportunisticReroute) {
      // Last-task hopeless check: for the rerouting policy this is the
      // §5.2 "drop as a last resort" — a request whose leftover budget
      // cannot cover even the sink's execution frees the batch slot.
      w->set_drop_filter(
          [this](const cluster::Worker& wk, const cluster::WorkItem& item) {
            return last_task_filter(wk, item);
          });
    }
    if (cfg_.exec_noise_frac > 0.0 || cfg_.straggler_prob > 0.0) {
      w->set_jitter([this](double nominal) {
        double v = cfg_.exec_noise_frac > 0.0
                       ? rng_jitter_.normal(nominal,
                                            nominal * cfg_.exec_noise_frac)
                       : nominal;
        // Stragglers: occasional much-slower batches (contention, clock
        // throttling) — the systematic part of a real cluster's noise.
        if (cfg_.straggler_prob > 0.0 &&
            rng_jitter_.bernoulli(cfg_.straggler_prob)) {
          v *= rng_jitter_.uniform(1.5, cfg_.straggler_scale);
        }
        return v;
      });
    }
    if (cfg_.batch_wait_s > 0.0) w->set_batch_wait(cfg_.batch_wait_s);
    workers_.push_back(std::move(w));
  }
  worker_group_.assign(workers_.size(), -1);
}

void ServingSystem::attach_metadata_store(MetadataStore* store) {
  LOKI_CHECK(store != nullptr);
  metadata_ = store;
  if (!metadata_->registered()) {
    metadata_->register_pipeline(graph_, profiles_, cfg_.allocator.slo_s);
  }
}

ServingSystem::~ServingSystem() = default;

void ServingSystem::schedule_control_loops(bool with_rm) {
  // Periodic control loops. Self-rescheduling keeps periods exact.
  auto schedule_periodic = [this](double period, std::function<void()> fn) {
    // The system owns the callback (periodic_); the scheduled copies only
    // hold a weak_ptr, so the reschedule cycle cannot keep itself alive
    // (was a shared_ptr self-capture leak). The copies still capture `this`:
    // the system must outlive any further sim_->run_*() calls, as everywhere
    // in this codebase.
    auto holder = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak = holder;
    *holder = [this, period, weak, fn = std::move(fn)]() {
      if (stopped_) return;
      fn();
      if (auto cb = weak.lock()) sim_->schedule_after(period, *cb);
    };
    periodic_.push_back(holder);
    sim_->schedule_after(period, *holder);
  };
  if (with_rm) {
    schedule_periodic(cfg_.rm_period_s, [this]() { run_resource_manager(); });
  }
  schedule_periodic(cfg_.lb_period_s, [this]() { run_load_balancer(); });
  schedule_periodic(cfg_.heartbeat_period_s, [this]() { run_heartbeat(); });
}

void ServingSystem::start() {
  LOKI_CHECK(!started_);
  LOKI_CHECK_MSG(strategy_ != nullptr,
                 "start() needs a strategy; externally-planned systems use "
                 "start_external()");
  started_ = true;
  run_resource_manager();  // initial allocation + routing
  schedule_control_loops(/*with_rm=*/true);
  arm_configured_faults();
}

void ServingSystem::start_external() {
  LOKI_CHECK(!started_);
  started_ = true;
  external_ = true;
  // No Resource Manager loop: plans arrive via install_plan(). The LB and
  // heartbeat loops still run so routing tracks the local demand estimate
  // and mult observations between plan pushes.
  schedule_control_loops(/*with_rm=*/false);
  arm_configured_faults();
}

void ServingSystem::arm_configured_faults() {
  if (cfg_.fault_plan.empty()) return;
  fault::FaultHooks hooks;
  hooks.crash = [this](int w) { inject_worker_crash(w); };
  hooks.recover = [this](int w) { inject_worker_recover(w); };
  hooks.straggler = [this](int w, double m) { inject_straggler(w, m); };
  hooks.heartbeat_loss = [this](int w, bool lost) {
    inject_heartbeat_loss(w, lost);
  };
  hooks.network = [this](double d, double p) {
    inject_network_degrade(d, p);
  };
  fault::arm_fault_plan(sim_, cfg_.fault_plan, std::move(hooks));
}

void ServingSystem::install_plan(AllocationPlan plan) {
  const double now = sim_->now();
  has_plan_ = true;
  last_alloc_demand_ = plan.demand_qps;
  ++allocations_;
  if (metadata_) {
    metadata_->record_demand(now, plan.demand_qps);
    metadata_->record_plan(now, plan);
    metadata_->record_mult_factors(mult_estimates_);
  }
  apply_plan(std::move(plan));
  run_load_balancer();
  metrics_.record_allocation(now, plan_.solve_time_s,
                             static_cast<int>(plan_.mode));
  if (fault_active_) {
    planned_fault_epoch_ = fault_epoch_;
    update_degraded();
  }
}

void ServingSystem::finish(double t_end) {
  if (fault_active_) {
    // Queries still stranded on a crashed worker at the end of the run are
    // shed-by-failure now, so arrivals == completions + drops reconciles
    // exactly (no query is silently lost with its worker).
    for (auto& held : stranded_) {
      for (const auto& item : held) {
        c_fault_stranded_dropped_.add(1);
        drop_query_part(item.query_id, t_end, LossCause::kWorkerFailure);
      }
      held.clear();
    }
  }
  stopped_ = true;
  metrics_.flush(t_end);
  publish_stage_counters();
}

int ServingSystem::active_workers() const {
  int n = 0;
  for (const auto& w : workers_) {
    if (w->active()) ++n;
  }
  return n;
}

int ServingSystem::crashed_workers() const {
  int n = 0;
  for (const auto& w : workers_) {
    if (w->crashed()) ++n;
  }
  return n;
}

cluster::StageCounters ServingSystem::stage_counters() const {
  // Monotonic since construction: per-worker counters never reset (workers
  // live for the system's lifetime, reassignment keeps their totals), so
  // this aggregate can only grow across apply_plan / install_plan.
  cluster::StageCounters total;
  for (const auto& w : workers_) total += w->stage_counters();
  return total;
}

void ServingSystem::publish_stage_counters() {
  const cluster::StageCounters total = stage_counters();
  const auto ns = [](double seconds) {
    return static_cast<std::uint64_t>(std::llround(seconds * 1e9));
  };
  c_stage_enqueued_.add(total.enqueued - published_stage_.enqueued);
  c_stage_queue_ns_.add(ns(total.queue_wait_s) -
                        ns(published_stage_.queue_wait_s));
  c_stage_batches_.add(total.batches - published_stage_.batches);
  c_stage_batch_items_.add(total.batch_items - published_stage_.batch_items);
  c_stage_execute_ns_.add(ns(total.execute_s) -
                          ns(published_stage_.execute_s));
  c_stage_swaps_.add(total.swaps - published_stage_.swaps);
  c_stage_swap_ns_.add(ns(total.swap_stall_s) -
                       ns(published_stage_.swap_stall_s));
  published_stage_ = total;
}

double ServingSystem::comm_delay() {
  double d = cfg_.allocator.comm_latency_s;
  if (fault_active_ && net_extra_delay_s_ > 0.0) d += net_extra_delay_s_;
  if (cfg_.comm_jitter_frac > 0.0) {
    d = std::max(0.0, rng_jitter_.normal(d, d * cfg_.comm_jitter_frac));
  }
  return d;
}

double ServingSystem::runtime_budget(int task, int variant, int batch) const {
  const double b =
      budget_lut_[budget_off_[static_cast<std::size_t>(task)] +
                  static_cast<std::size_t>(variant)];
  if (b >= 0.0) return b;
  // Plan changed under the request: fall back to 2x the profiled batch
  // latency of this worker's configuration.
  const auto& prof = profiles_[static_cast<std::size_t>(task)]
                              [static_cast<std::size_t>(variant)];
  const int idx = prof.index_of(batch);
  const double lat = idx >= 0 ? prof.latency_s[static_cast<std::size_t>(idx)]
                              : prof.latency_s.back();
  return 2.0 * lat;
}

void ServingSystem::rebuild_budget_lut() {
  std::fill(budget_lut_.begin(), budget_lut_.end(), -1.0);
  for (const auto& [tv, budget] : plan_.latency_budget_s) {
    const auto [task, variant] = tv;
    if (task < 0 || task >= graph_->num_tasks() || variant < 0) continue;
    const std::size_t slot =
        budget_off_[static_cast<std::size_t>(task)] +
        static_cast<std::size_t>(variant);
    if (slot < budget_off_[static_cast<std::size_t>(task) + 1]) {
      budget_lut_[slot] = budget;
    }
  }
}

// ---------------------------------------------------------------------------
// Frontend
// ---------------------------------------------------------------------------

void ServingSystem::submit() { submit(/*tier=*/0); }

void ServingSystem::submit(int tier) {
  if (tier < 0) tier = 0;
  if (tier >= kNumTiers) tier = kNumTiers - 1;
  const double now = sim_->now();
  const bool metered = now >= cfg_.metrics_warmup_s;
  if (metered) metrics_.record_arrival(now, tier);
  demand_.record_arrival(now);
  task_window_arrivals_[static_cast<std::size_t>(root_task_)] += 1.0;
  if (tiers_active_) {
    tier_window_arrivals_[static_cast<std::size_t>(tier)] += 1.0;
  }

  // Degraded overload mode (fault subsystem): dead capacity the plan has
  // not yet been rebuilt around — shed the lost-capacity fraction at the
  // frontend so the surviving workers keep meeting their latency budgets
  // instead of queueing everything into SLO violations. With tiers the
  // fraction is filled lowest-tier-first (single-tier traffic draws the
  // exact untiered probability — see tier_shed_probs).
  if (fault_active_ && degraded_ &&
      rng_fault_.bernoulli(tiers_active_
                               ? tier_degraded_shed_[static_cast<std::size_t>(
                                     tier)]
                               : degraded_shed_frac_)) {
    c_fault_degraded_shed_.add(1);
    if (metered) {
      metrics_.record_outcome(now, QueryOutcome::kShed, 0.0, 0.0,
                              LossCause::kDegradedOverload, tier);
    }
    return;
  }

  // Priority-aware admission control: a tier whose in-flight depth reached
  // its watermark sheds the new arrival (the newest arrival carries the
  // latest deadline of its tier, so admission-time shedding IS latest-
  // deadline-first within the tier). Deterministic — no RNG drawn.
  if (tiers_active_) {
    const double cap =
        cfg_.tiers.depth_watermark[static_cast<std::size_t>(tier)] *
        static_cast<double>(std::max(1, plan_.servers_used));
    if (static_cast<double>(tier_inflight_[static_cast<std::size_t>(tier)]) >=
        cap) {
      c_degrade_admission_shed_.add(1);
      if (metered) {
        metrics_.record_outcome(now, QueryOutcome::kShed, 0.0, 0.0,
                                LossCause::kCapacity, tier);
      }
      return;
    }
  }

  // Overload shedding: the plan serves only served_fraction of demand.
  // Tiered serving grants the fraction highest-tier-first; the single draw
  // against the tier's serve probability keeps the RNG stream in lockstep
  // with the untiered comparison.
  if (plan_.served_fraction < 1.0) {
    const double serve_p =
        tiers_active_ ? tier_serve_probs_[static_cast<std::size_t>(tier)]
                      : plan_.served_fraction;
    if (rng_shed_.uniform() > serve_p) {
      if (tiers_active_) c_degrade_overload_shed_.add(1);
      if (metered) {
        metrics_.record_outcome(now, QueryOutcome::kShed, 0.0, 0.0,
                                LossCause::kCapacity, tier);
      }
      return;
    }
  }

  const int group = pick_group(routing_.frontend_table());
  if (group < 0) {
    // The draw landed in the table's unplaced remainder (or the table is
    // empty): normally a tier-blind shed. With remainder_priority, a
    // strict-tier arrival is force-routed instead — forward_item with no
    // group falls through to the least-loaded worker of the frontend task
    // (a bounded overcommit), and only sheds if no such worker exists.
    const bool rescue = tiers_active_ && cfg_.tiers.remainder_priority &&
                        tier == 0 &&
                        pick_worker_for_task(root_task_) >= 0;
    if (!rescue) {
      if (metered) {
        metrics_.record_outcome(now, QueryOutcome::kShed, 0.0, 0.0,
                                any_worker_crashed()
                                    ? LossCause::kWorkerFailure
                                    : LossCause::kCapacity,
                                tier);
      }
      return;
    }
    c_degrade_remainder_rescued_.add(1);
  }
  const std::uint64_t qid = queries_.emplace();
  QueryState& qs = queries_.get(qid);
  qs.arrival = now;
  qs.deadline = now + cfg_.allocator.slo_s;
  qs.outstanding = 1;
  qs.metered = metered;
  qs.tier = tier;
  ++tier_inflight_[static_cast<std::size_t>(tier)];
  c_admitted_.add(1);
  tracer_.on_admit(qid, now);

  cluster::WorkItem item;
  item.query_id = qid;
  item.task = root_task_;
  item.deadline = qs.deadline;
  item.accuracy_so_far = 1.0;
  item.tier = tier;
  forward_item(item, group);
}

int ServingSystem::pick_group(const RoutingPlan::DrawTable& table) {
  // Empty tables short-circuit before drawing so the routing RNG stream
  // advances exactly as often as before (bit-reproducibility).
  if (table.empty()) return -1;
  return table.pick(rng_routing_.uniform());
}

int ServingSystem::scan_group(int group, bool skip_quarantined) const {
  if (group < 0 || group >= static_cast<int>(group_workers_.size())) return -1;
  // Least-loaded replica over the packed load cells; workers mid model-swap
  // only as a last resort (their queue stalls for the whole load time).
  // Tie-breaks (first minimum in group order) match the old per-Worker scan.
  int best = -1;
  std::uint32_t best_load = cluster::Worker::kLoadCellInactive;
  int best_loading = -1;
  std::uint32_t best_loading_load = cluster::Worker::kLoadCellInactive;
  for (int wid : group_workers_[static_cast<std::size_t>(group)]) {
    if (skip_quarantined &&
        worker_quarantined_[static_cast<std::size_t>(wid)]) {
      continue;
    }
    const std::uint32_t cell = worker_load_[static_cast<std::size_t>(wid)];
    if (cell == cluster::Worker::kLoadCellInactive) continue;
    if (cell & cluster::Worker::kLoadCellLoadingBit) {
      const std::uint32_t l = cell & ~cluster::Worker::kLoadCellLoadingBit;
      if (l < best_loading_load) {
        best_loading_load = l;
        best_loading = wid;
      }
    } else if (cell < best_load) {
      best_load = cell;
      best = wid;
    }
  }
  return best >= 0 ? best : best_loading;
}

int ServingSystem::pick_worker(int group) const {
  // Quarantine (fault subsystem): suspects take no new work; when an entire
  // group is quarantined, fall back to whatever is alive rather than drop.
  const int wid = scan_group(group, /*skip_quarantined=*/fault_active_);
  if (wid >= 0 || !fault_active_) return wid;
  return scan_group(group, /*skip_quarantined=*/false);
}

int ServingSystem::scan_task(int task, bool skip_quarantined) const {
  int best = -1;
  std::uint32_t best_load = cluster::Worker::kLoadCellInactive;
  int best_loading = -1;
  std::uint32_t best_loading_load = cluster::Worker::kLoadCellInactive;
  for (std::size_t wid = 0; wid < worker_load_.size(); ++wid) {
    if (worker_task_[wid] != task) continue;
    if (skip_quarantined && worker_quarantined_[wid]) continue;
    const std::uint32_t cell = worker_load_[wid];
    if (cell == cluster::Worker::kLoadCellInactive) continue;
    if (cell & cluster::Worker::kLoadCellLoadingBit) {
      const std::uint32_t l = cell & ~cluster::Worker::kLoadCellLoadingBit;
      if (l < best_loading_load) {
        best_loading_load = l;
        best_loading = static_cast<int>(wid);
      }
    } else if (cell < best_load) {
      best_load = cell;
      best = static_cast<int>(wid);
    }
  }
  return best >= 0 ? best : best_loading;
}

int ServingSystem::pick_worker_for_task(int task) const {
  const int wid = scan_task(task, /*skip_quarantined=*/fault_active_);
  if (wid >= 0 || !fault_active_) return wid;
  return scan_task(task, /*skip_quarantined=*/false);
}

bool ServingSystem::any_worker_crashed() const {
  if (!fault_active_) return false;
  for (const auto& w : workers_) {
    if (w->crashed()) return true;
  }
  return false;
}

void ServingSystem::forward_item(cluster::WorkItem item, int group) {
  int wid = pick_worker(group);
  if (wid < 0) {
    // Group not staffed yet (rolling swap in progress): any worker serving
    // the task will do — possibly at a different accuracy point.
    wid = pick_worker_for_task(item.task);
  }
  if (wid < 0) {
    drop_query_part(item.query_id, sim_->now(),
                    any_worker_crashed() ? LossCause::kWorkerFailure
                                         : LossCause::kCapacity);
    return;
  }
  // Network fault injection: degraded links drop forwards outright.
  if (fault_active_ && net_drop_prob_ > 0.0 &&
      rng_fault_.bernoulli(net_drop_prob_)) {
    c_fault_net_drops_.add(1);
    drop_query_part(item.query_id, sim_->now(), LossCause::kWorkerFailure);
    return;
  }
  const double delay = comm_delay();
  tracer_.add_comm(item.query_id, delay);
  sim_->schedule_after(delay, [this, item, wid]() mutable {
    auto& w = *workers_[static_cast<std::size_t>(wid)];
    if (!w.active()) {
      // Reassigned (or crashed) while in flight: any worker of the task.
      const int alt = pick_worker_for_task(item.task);
      if (alt < 0) {
        drop_query_part(item.query_id, sim_->now(),
                        w.crashed() || any_worker_crashed()
                            ? LossCause::kWorkerFailure
                            : LossCause::kCapacity);
        return;
      }
      item.enqueue_time = sim_->now();
      workers_[static_cast<std::size_t>(alt)]->enqueue(item);
      return;
    }
    item.enqueue_time = sim_->now();
    w.enqueue(item);
  });
}

// ---------------------------------------------------------------------------
// Worker completion path
// ---------------------------------------------------------------------------

bool ServingSystem::last_task_filter(const cluster::Worker& w,
                                     const cluster::WorkItem& item) const {
  if (!graph_->is_sink(w.task())) return false;
  if (w.model() == nullptr) return false;
  // Leftover budget vs expected processing time at this worker (§5.2(2)).
  // The batch about to execute is roughly the backlog, capped at max batch.
  const int est_batch = std::clamp(static_cast<int>(w.load()) + 1, 1,
                                   std::max(1, w.max_batch()));
  const double expected_exec = w.model()->latency.latency_s(est_batch);
  return sim_->now() + expected_exec > item.deadline;
}

void ServingSystem::on_dropped_items(cluster::Worker& /*w*/,
                                     std::vector<cluster::WorkItem>& items) {
  const double now = sim_->now();
  for (const auto& item : items) drop_query_part(item.query_id, now);
}

void ServingSystem::on_batch_done(cluster::Worker& w,
                                  std::vector<cluster::WorkItem>& items,
                                  const cluster::Worker::BatchContext& ctx) {
  const double now = sim_->now();
  const int task = ctx.task;
  const int variant = ctx.variant;
  if (task < 0 || ctx.model == nullptr) return;
  const double variant_acc =
      graph_->task(task).catalog.at(variant).accuracy;
  const double budget = runtime_budget(task, variant, ctx.max_batch);
  const bool is_sink = graph_->is_sink(task);
  const double r_true = ctx.model->mult_factor_mean;
  const auto& children = graph_->children(task);
  const auto& ratios = branch_ratios_[static_cast<std::size_t>(task)];

  for (auto& item : items) {
    obs_in_[static_cast<std::size_t>(task)][static_cast<std::size_t>(variant)] +=
        1.0;
    item.accuracy_so_far *= variant_acc;
    const double stage_elapsed = now - item.enqueue_time;
    // Cumulative deficit: time over budget here plus anything carried from
    // upstream tasks, minus slack earned by finishing early.
    const double over =
        std::max(0.0, item.debt_s + stage_elapsed - budget);
    item.debt_s = over;

    if (is_sink) {
      if (QueryState* qs = queries_.find(item.query_id)) {
        qs->accuracy_sum += item.accuracy_so_far;
        ++qs->sink_completions;
      }
      complete_part(item.query_id, now);
      continue;
    }

    // Sample the realized multiplicative factor: total detected objects,
    // multinomially assigned to children by branch ratio. Draw order and
    // values are identical to the pre-scratch implementation (bit-repro).
    const auto total_objects = rng_mult_.poisson(r_true);
    obs_out_[static_cast<std::size_t>(task)]
            [static_cast<std::size_t>(variant)] +=
        static_cast<double>(total_objects);

    scratch_child_counts_.assign(children.size(), 0);
    for (std::uint64_t obj = 0; obj < total_objects; ++obj) {
      double u = rng_mult_.uniform();
      for (std::size_t ci = 0; ci < children.size(); ++ci) {
        const double br = ratios[ci];
        if (u < br) {
          ++scratch_child_counts_[ci];
          break;
        }
        u -= br;
      }
    }

    QueryState* qstate = queries_.find(item.query_id);
    if (qstate == nullptr) continue;  // already finalized (shouldn't)

    scratch_forwards_.clear();
    bool drop_rest = false;

    for (std::size_t ci = 0; ci < children.size(); ++ci) {
      const int child = children[ci];
      task_window_arrivals_[static_cast<std::size_t>(child)] +=
          static_cast<double>(scratch_child_counts_[ci]);
      if (scratch_child_counts_[ci] == 0) continue;
      // This worker's routing table for the child task (negative index =
      // stale plan, same contract as routes_for returning nullptr).
      const std::int32_t ti = routing_.table_index(
          worker_group_[static_cast<std::size_t>(w.id())], child);
      const RoutingPlan::DrawTable table =
          ti >= 0 ? routing_.table_at(ti) : RoutingPlan::DrawTable{};

      for (int n = 0; n < scratch_child_counts_[ci]; ++n) {
        int group = ti >= 0 ? pick_group(table) : -1;
        if (group < 0 && ti < 0) {
          // No table (stale plan): any worker of the child task.
          const int alt = pick_worker_for_task(child);
          if (alt >= 0) {
            cluster::WorkItem next;
            next.query_id = item.query_id;
            next.task = child;
            next.deadline = item.deadline;
            next.accuracy_so_far = item.accuracy_so_far;
            next.debt_s = item.debt_s;
            next.tier = item.tier;
            metrics_.record_forwards(1);
            qstate->outstanding += 1;
            const double delay = comm_delay();
            tracer_.add_comm(next.query_id, delay);
            sim_->schedule_after(delay, [this, next, alt]() mutable {
              auto& aw = *workers_[static_cast<std::size_t>(alt)];
              if (!aw.active()) {
                drop_query_part(next.query_id, sim_->now());
                return;
              }
              next.enqueue_time = sim_->now();
              aw.enqueue(next);
            });
            continue;
          }
          drop_rest = true;
          break;
        }
        // Early dropping at forward time (§5.2): when the request is
        // running behind (positive cumulative budget deficit), test whether
        // the default downstream worker can still make the deadline —
        // reserving one batch of queueing per the SLO/2 rule.
        //   * per-task dropping: drop on a failed test (no rescue);
        //   * opportunistic rerouting: first look for a faster backup
        //     worker from the leftover-capacity table, drop as last resort.
        const bool checks_forward =
            cfg_.drop_policy == DropPolicy::kPerTask ||
            cfg_.drop_policy == DropPolicy::kOpportunisticReroute;
        if (checks_forward && over > 0.0) {
          const double slack = item.deadline - now;
          const double tail =
              cfg_.allocator.comm_latency_s + descendant_budget(child);
          const double y =
              group >= 0
                  ? routing_.group_exec_s[static_cast<std::size_t>(group)]
                  : std::numeric_limits<double>::infinity();
          if (2.0 * y + tail > slack) {
            int backup = -1;
            if (cfg_.drop_policy == DropPolicy::kOpportunisticReroute) {
              for (const auto& be :
                   routing_.backup_per_task[static_cast<std::size_t>(child)]) {
                if (2.0 * be.exec_s + tail <= slack) {
                  backup = be.group;
                  break;  // list is accuracy-ordered: first hit is best
                }
              }
            }
            if (backup >= 0) {
              group = backup;
            } else {
              drop_rest = true;
              break;
            }
          }
        }
        if (group < 0) {
          drop_rest = true;
          break;
        }
        scratch_forwards_.push_back({group, 1, child});
      }
      if (drop_rest) break;
    }

    if (drop_rest) {
      drop_query_part(item.query_id, now);
      continue;
    }
    // Commit the forwards.
    metrics_.record_forwards(scratch_forwards_.size());
    for (const auto& f : scratch_forwards_) {
      cluster::WorkItem next;
      next.query_id = item.query_id;
      next.task = f.child_task;
      next.deadline = item.deadline;
      next.accuracy_so_far = item.accuracy_so_far;
      next.debt_s = item.debt_s;
      next.tier = item.tier;
      qstate->outstanding += 1;
      forward_item(next, f.group);
    }
    complete_part(item.query_id, now);
  }
}

void ServingSystem::drop_query_part(std::uint64_t query_id, double now,
                                    LossCause cause) {
  QueryState* qs = queries_.find(query_id);
  if (qs == nullptr) return;
  if (!qs->dropped) {
    qs->dropped = true;
    qs->cause = cause;  // first drop wins the attribution
  }
  complete_part(query_id, now);
}

void ServingSystem::complete_part(std::uint64_t query_id, double now) {
  QueryState* qsp = queries_.find(query_id);
  if (qsp == nullptr) return;
  QueryState& qs = *qsp;
  if (--qs.outstanding > 0) return;

  // Flush the sampled trace record for every finalized query (metered or
  // not) so record slots recycle in lockstep with pool slots.
  tracer_.on_complete(query_id, now, qs.dropped);

  --tier_inflight_[static_cast<std::size_t>(qs.tier)];
  const double latency = now - qs.arrival;
  if (!qs.metered) {
    queries_.erase(query_id);
    return;
  }
  if (qs.dropped) {
    // Fault-caused losses count as *shed* with their cause (shed-by-failure
    // / shed-by-degradation); plain capacity drops keep the pre-fault
    // accounting bit-identical.
    if (qs.cause == LossCause::kCapacity) {
      metrics_.record_outcome(now, QueryOutcome::kDropped, 0.0, latency,
                              qs.cause, qs.tier);
    } else {
      metrics_.record_outcome(now, QueryOutcome::kShed, 0.0, latency,
                              qs.cause, qs.tier);
    }
  } else {
    const double acc =
        qs.sink_completions > 0
            ? qs.accuracy_sum / static_cast<double>(qs.sink_completions)
            : 1.0;  // zero detections: trivially correct response
    const bool late = now > qs.deadline + 1e-9;
    metrics_.record_outcome(now, late ? QueryOutcome::kLate
                                      : QueryOutcome::kOnTime,
                            acc, latency, LossCause::kCapacity, qs.tier);
  }
  queries_.erase(query_id);
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

std::vector<double> ServingSystem::drain_task_arrivals(double now) {
  const double window = now - arrivals_window_start_;
  // Always num_tasks entries: a zero-width window (two plan requests at the
  // same instant, e.g. a surge retrigger) yields zero rates, not an empty
  // vector — PlanRequest::task_arrivals_qps must never change size between
  // epochs (strategies index it by task).
  std::vector<double> rates(task_window_arrivals_.size(), 0.0);
  if (window > 1e-9) {
    for (std::size_t t = 0; t < rates.size(); ++t) {
      rates[t] = task_window_arrivals_[t] / window;
    }
  }
  std::fill(task_window_arrivals_.begin(), task_window_arrivals_.end(), 0.0);
  arrivals_window_start_ = now;
  return rates;
}

void ServingSystem::run_resource_manager(bool force) {
  LOKI_CHECK(strategy_ != nullptr);
  const double now = sim_->now();
  const double demand = demand_.estimate(now);
  // Hysteresis: skip the re-allocation when demand barely moved — swapping
  // variants costs load time and the current plan still fits. Failure
  // re-plans (`force`) always go through: the *capacity* moved, not demand.
  if (has_plan_ && !force) {
    const double rel = std::abs(demand - last_alloc_demand_) /
                       std::max(last_alloc_demand_, 10.0);
    if (rel < cfg_.realloc_threshold && plan_.served_fraction >= 1.0) {
      run_load_balancer();
      return;
    }
  }
  PlanRequest req;
  req.demand_qps = demand;
  req.mult = mult_estimates_;
  req.task_arrivals_qps = drain_task_arrivals(now);
  req.sim_time_s = now;
  req.epoch = allocations_;
  req.previous_plan = has_plan_ ? &plan_ : nullptr;
  if (fault_active_) {
    req.available_workers =
        cfg_.allocator.cluster_size - detector_.dead_count();
  }
  PlanResult result;
  if (fallback_chain_ != nullptr) {
    // Deadline-enforced fallback chain (graceful degradation): a slow or
    // invalid solve degrades plan quality rung by rung but never stalls
    // the epoch loop or installs a corrupt plan.
    FallbackOutcome fo = fallback_chain_->plan(req);
    result = std::move(fo.result);
    last_plan_rung_ = fo.rung;
    if (fo.fallbacks > 0) {
      plan_fallbacks_ += static_cast<std::uint64_t>(fo.fallbacks);
      c_degrade_plan_fallbacks_.add(static_cast<std::uint64_t>(fo.fallbacks));
    }
    if (fo.rejects > 0) {
      plan_rejects_ += static_cast<std::uint64_t>(fo.rejects);
      c_degrade_plan_rejects_.add(static_cast<std::uint64_t>(fo.rejects));
    }
    if (fo.retained_previous) {
      ++plans_retained_;
      c_degrade_plan_retained_.add(1);
    }
  } else {
    result = strategy_->plan(req);
  }
  AllocationPlan plan = std::move(result.plan);
  has_plan_ = true;
  last_alloc_demand_ = demand;
  if (metadata_) {
    metadata_->record_demand(now, demand);
    metadata_->record_plan(now, plan);
    metadata_->record_mult_factors(mult_estimates_);
  }
  total_solve_time_s_ += plan.solve_time_s;
  ++allocations_;
  apply_plan(std::move(plan));
  run_load_balancer();  // LB runs on every allocation change (§5.1)
  metrics_.record_allocation(now, plan_.solve_time_s,
                             static_cast<int>(plan_.mode));
  if (fault_active_) {
    planned_fault_epoch_ = fault_epoch_;
    update_degraded();
  }
}

void ServingSystem::run_load_balancer() {
  const double now = sim_->now();
  routing_ =
      lb_.most_accurate_first(plan_, demand_.estimate(now), mult_estimates_);
  refresh_tier_shares();
}

void ServingSystem::refresh_tier_shares() {
  if (!tiers_active_) return;
  double total = 0.0;
  for (double v : tier_window_arrivals_) total += v;
  if (total > 0.0) {
    std::array<double, kNumTiers> obs{};
    for (int k = 0; k < kNumTiers; ++k) {
      obs[static_cast<std::size_t>(k)] =
          tier_window_arrivals_[static_cast<std::size_t>(k)] / total;
    }
    if (!tier_shares_seeded_) {
      // Seed from the first non-empty window exactly (no blend with the
      // {1, 0, 0} prior): an all-tier-0 run keeps shares at exactly
      // {1, 0, 0} forever, which the shed fills rely on for passivity.
      tier_shares_ = obs;
      tier_shares_seeded_ = true;
    } else if (obs != tier_shares_) {
      const double a = cfg_.tiers.share_ewma_alpha;
      for (int k = 0; k < kNumTiers; ++k) {
        tier_shares_[static_cast<std::size_t>(k)] =
            a * obs[static_cast<std::size_t>(k)] +
            (1.0 - a) * tier_shares_[static_cast<std::size_t>(k)];
      }
    }
    tier_window_arrivals_.fill(0.0);
  }
  recompute_tier_probs();
}

void ServingSystem::recompute_tier_probs() {
  if (!tiers_active_) return;
  tier_serve_probs_ = tier_serve_probs(plan_.served_fraction, tier_shares_);
  tier_degraded_shed_ = tier_shed_probs(degraded_shed_frac_, tier_shares_);
}

void ServingSystem::run_heartbeat() {
  const double now = sim_->now();
  // Fold observed multiplicative factors into the estimates.
  for (std::size_t t = 0; t < obs_in_.size(); ++t) {
    if (graph_->is_sink(static_cast<int>(t))) continue;
    for (std::size_t k = 0; k < obs_in_[t].size(); ++k) {
      if (obs_in_[t][k] < 1.0) continue;
      const double observed = obs_out_[t][k] / obs_in_[t][k];
      // Scale the EWMA weight by the window's sample count: a near-empty
      // window (trace tail, cold variant) is Poisson noise, not signal.
      const double alpha =
          cfg_.mult_ewma_alpha * std::min(1.0, obs_in_[t][k] / 30.0);
      mult_estimates_[t][k] =
          alpha * observed + (1.0 - alpha) * mult_estimates_[t][k];
      obs_in_[t][k] = 0.0;
      obs_out_[t][k] = 0.0;
    }
  }
  // Per-task arrivals keep accumulating in task_window_arrivals_; they
  // reach the strategy as PlanRequest::task_arrivals_qps at the next plan
  // request (the old observe_task_demand side-channel is gone).
  metrics_.record_utilization(now, plan_.servers_used,
                              cfg_.allocator.cluster_size);
  publish_stage_counters();

  // Failure detection runs on the heartbeat cadence for internal *and*
  // externally-planned systems (the coordinator polls
  // fault_replan_pending() at its barriers; detection itself is local).
  if (fault_active_) run_failure_detection(now);

  // §4.2: the Resource Manager reallocates between periodic invocations
  // when it detects a significant demand change (e.g. cold start or a
  // burst arriving right after a periodic run). Externally-planned systems
  // leave surge handling to their coordinator (which sees all shards).
  if (external_) return;
  const double est = demand_.estimate(now);
  const bool surge = est > last_alloc_demand_ * 1.25 + 1.0;
  const bool collapse = est < last_alloc_demand_ * 0.5 - 1.0;
  if (surge || collapse) run_resource_manager();
}

void ServingSystem::apply_plan(AllocationPlan plan) {
  const int ngroups = static_cast<int>(plan.instances.size());
  std::vector<std::vector<int>> new_group_workers(
      static_cast<std::size_t>(ngroups));
  std::vector<int> slots_left(static_cast<std::size_t>(ngroups));
  for (int gi = 0; gi < ngroups; ++gi) {
    slots_left[static_cast<std::size_t>(gi)] =
        plan.instances[static_cast<std::size_t>(gi)].replicas;
  }

  std::vector<bool> worker_placed(workers_.size(), false);
  std::vector<cluster::WorkItem> flushed;
  const auto flush_into = [&flushed](std::vector<cluster::WorkItem>&& items) {
    flushed.insert(flushed.end(), std::make_move_iterator(items.begin()),
                   std::make_move_iterator(items.end()));
  };

  // Pass 1: keep workers already hosting the right (task, variant); a batch
  // parameter change is free.
  for (int gi = 0; gi < ngroups; ++gi) {
    const auto& ic = plan.instances[static_cast<std::size_t>(gi)];
    for (std::size_t wi = 0;
         wi < workers_.size() && slots_left[static_cast<std::size_t>(gi)] > 0;
         ++wi) {
      auto& w = *workers_[wi];
      if (worker_placed[wi] || !w.active()) continue;
      if (w.task() == ic.task && w.variant() == ic.variant) {
        flush_into(w.assign(
            ic.task, ic.variant,
            &graph_->task(ic.task).catalog.at(ic.variant), ic.batch,
            /*swap_cost=*/false));
        new_group_workers[static_cast<std::size_t>(gi)].push_back(w.id());
        worker_placed[wi] = true;
        --slots_left[static_cast<std::size_t>(gi)];
      }
    }
  }
  // Pass 2a: fill remaining slots with idle workers (loading an idle
  // worker costs no serving capacity, so these start immediately). Crashed
  // workers are idle but not placeable until they recover.
  std::vector<std::pair<int, int>> deferred;  // (worker id, group)
  for (int gi = 0; gi < ngroups; ++gi) {
    const auto& ic = plan.instances[static_cast<std::size_t>(gi)];
    for (std::size_t wi = 0;
         wi < workers_.size() && slots_left[static_cast<std::size_t>(gi)] > 0;
         ++wi) {
      auto& w = *workers_[wi];
      if (worker_placed[wi] || w.active() || w.crashed()) continue;
      flush_into(w.assign(ic.task, ic.variant,
                          &graph_->task(ic.task).catalog.at(ic.variant),
                          ic.batch, cfg_.model_swap_cost));
      new_group_workers[static_cast<std::size_t>(gi)].push_back(w.id());
      worker_placed[wi] = true;
      --slots_left[static_cast<std::size_t>(gi)];
    }
  }
  // Pass 2b: repurpose active workers — deferred behind the rolling-update
  // bound so the cluster never loses more than max_concurrent_swaps
  // workers' worth of capacity at once. Until their turn they keep serving
  // their old variant.
  for (int gi = 0; gi < ngroups; ++gi) {
    for (std::size_t wi = 0;
         wi < workers_.size() && slots_left[static_cast<std::size_t>(gi)] > 0;
         ++wi) {
      auto& w = *workers_[wi];
      if (worker_placed[wi] || !w.active()) continue;
      deferred.push_back({w.id(), gi});
      worker_placed[wi] = true;
      --slots_left[static_cast<std::size_t>(gi)];
    }
  }
  // Deactivate everything not placed (hardware scale-down).
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    if (!worker_placed[wi] && workers_[wi]->active()) {
      flush_into(workers_[wi]->deactivate());
    }
  }
  // Unstaffed groups first: a group with zero ready workers blocks its
  // share of routed traffic entirely.
  std::stable_sort(deferred.begin(), deferred.end(),
                   [&](const auto& a, const auto& b) {
                     const auto staffed = [&](int gi) {
                       return new_group_workers[static_cast<std::size_t>(gi)]
                           .size();
                     };
                     return staffed(a.second) < staffed(b.second);
                   });
  pending_swaps_.assign(deferred.begin(), deferred.end());

  plan_ = std::move(plan);
  rebuild_budget_lut();
  group_workers_ = std::move(new_group_workers);
  worker_group_.assign(workers_.size(), -1);
  for (std::size_t gi = 0; gi < group_workers_.size(); ++gi) {
    for (int wid : group_workers_[gi]) {
      worker_group_[static_cast<std::size_t>(wid)] = static_cast<int>(gi);
    }
  }
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    worker_task_[wi] =
        workers_[wi]->active() ? workers_[wi]->task() : -1;
  }
  recompute_descendant_budgets();
  kick_pending_swaps();
  redistribute(std::move(flushed));
}

void ServingSystem::kick_pending_swaps() {
  while (swaps_in_flight_ < cfg_.max_concurrent_swaps &&
         !pending_swaps_.empty()) {
    const auto [wid, gi] = pending_swaps_.front();
    pending_swaps_.pop_front();
    if (gi >= static_cast<int>(plan_.instances.size())) continue;  // stale
    const auto& ic = plan_.instances[static_cast<std::size_t>(gi)];
    auto& w = *workers_[static_cast<std::size_t>(wid)];
    if (!w.active()) continue;  // deactivated meanwhile
    const auto* model = &graph_->task(ic.task).catalog.at(ic.variant);
    // A swap is any change of hosted (task, variant) — matching apply_plan
    // pass 1 and Worker::assign. Comparing only the variant index let a
    // worker move to a *different task* whose variant happened to share the
    // index without paying the model-load cost.
    const bool pays_swap =
        cfg_.model_swap_cost &&
        (w.task() != ic.task || w.variant() != ic.variant);
    auto items = w.assign(ic.task, ic.variant, model, ic.batch, pays_swap);
    group_workers_[static_cast<std::size_t>(gi)].push_back(wid);
    worker_group_[static_cast<std::size_t>(wid)] = gi;
    worker_task_[static_cast<std::size_t>(wid)] = ic.task;
    redistribute(std::move(items));
    if (pays_swap && model->load_time_s > 0.0) {
      metrics_.record_model_swap();
      ++swaps_in_flight_;
      sim_->schedule_after(model->load_time_s + 1e-6, [this]() {
        --swaps_in_flight_;
        kick_pending_swaps();
      });
    }
  }
}

void ServingSystem::recompute_descendant_budgets() {
  const auto& g = *graph_;
  // Replica-weighted mean runtime budget per task under the current plan.
  std::vector<double> mean_budget(static_cast<std::size_t>(g.num_tasks()), 0.0);
  std::vector<double> weight(static_cast<std::size_t>(g.num_tasks()), 0.0);
  for (const auto& ic : plan_.instances) {
    const auto it = plan_.latency_budget_s.find({ic.task, ic.variant});
    if (it == plan_.latency_budget_s.end()) continue;
    mean_budget[static_cast<std::size_t>(ic.task)] +=
        it->second * static_cast<double>(ic.replicas);
    weight[static_cast<std::size_t>(ic.task)] +=
        static_cast<double>(ic.replicas);
  }
  for (std::size_t t = 0; t < mean_budget.size(); ++t) {
    if (weight[t] > 0.0) mean_budget[t] /= weight[t];
  }
  // desc_budget[t] = worst-case remaining chain below t (budgets + hops).
  desc_budget_.assign(static_cast<std::size_t>(g.num_tasks()), 0.0);
  auto order = g.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int t = *it;
    double worst = 0.0;
    for (int c : g.children(t)) {
      worst = std::max(worst, cfg_.allocator.comm_latency_s +
                                  mean_budget[static_cast<std::size_t>(c)] +
                                  desc_budget_[static_cast<std::size_t>(c)]);
    }
    desc_budget_[static_cast<std::size_t>(t)] = worst;
  }
}

void ServingSystem::redistribute(std::vector<cluster::WorkItem>&& items) {
  const double now = sim_->now();
  for (auto& item : items) {
    const int wid = pick_worker_for_task(item.task);
    if (wid < 0) {
      drop_query_part(item.query_id, now);
      continue;
    }
    item.enqueue_time = now;
    workers_[static_cast<std::size_t>(wid)]->enqueue(item);
  }
}

// ---------------------------------------------------------------------------
// Fault subsystem
// ---------------------------------------------------------------------------

namespace {
std::uint64_t fault_ns(double seconds) {
  return static_cast<std::uint64_t>(std::llround(seconds * 1e9));
}
}  // namespace

void ServingSystem::inject_worker_crash(int worker) {
  LOKI_CHECK_MSG(fault_active_, "fault injection on an inert system");
  LOKI_CHECK(worker >= 0 && worker < static_cast<int>(workers_.size()));
  const std::size_t wi = static_cast<std::size_t>(worker);
  auto& w = *workers_[wi];
  if (w.crashed()) return;
  const double now = sim_->now();
  c_fault_crashes_.add(1);
  crash_time_[wi] = now;
  // Stranded items are *held*, not retried immediately: the controller does
  // not know about the crash until the detector declares the worker dead.
  std::vector<cluster::WorkItem> lost = w.crash();
  auto& held = stranded_[wi];
  held.insert(held.end(), lost.begin(), lost.end());
  worker_task_[wi] = -1;
}

void ServingSystem::inject_worker_recover(int worker) {
  LOKI_CHECK_MSG(fault_active_, "fault injection on an inert system");
  LOKI_CHECK(worker >= 0 && worker < static_cast<int>(workers_.size()));
  const std::size_t wi = static_cast<std::size_t>(worker);
  auto& w = *workers_[wi];
  if (!w.crashed()) return;
  const double now = sim_->now();
  c_fault_recoveries_.add(1);
  w.recover();
  // Anything still stranded (the worker came back before the detector
  // declared it dead) is retried or shed now.
  resolve_stranded(worker, now);
  if (dead_since_[wi] < 0.0) {
    // Never declared dead: no detector transition will restore placement,
    // so trigger the re-plan directly. The detector catches up at the next
    // heartbeat via the bumped incarnation.
    crash_time_[wi] = -1.0;
    ++fault_epoch_;
    update_degraded();
    if (!external_ && strategy_ != nullptr) {
      c_fault_replans_.add(1);
      run_resource_manager(/*force=*/true);
    }
  }
  // Declared-dead workers re-plan on the dead -> alive transition instead
  // (next accepted heartbeat report), which also records recovery time.
}

void ServingSystem::inject_straggler(int worker, double mult) {
  LOKI_CHECK_MSG(fault_active_, "fault injection on an inert system");
  LOKI_CHECK(worker >= 0 && worker < static_cast<int>(workers_.size()));
  auto& w = *workers_[static_cast<std::size_t>(worker)];
  if (w.crashed()) return;  // crash already reset the multiplier
  w.set_exec_multiplier(mult);
}

void ServingSystem::inject_heartbeat_loss(int worker, bool lost) {
  LOKI_CHECK_MSG(fault_active_, "fault injection on an inert system");
  LOKI_CHECK(worker >= 0 && worker < static_cast<int>(workers_.size()));
  hb_suppressed_[static_cast<std::size_t>(worker)] = lost ? 1 : 0;
}

void ServingSystem::inject_network_degrade(double extra_delay_s,
                                           double drop_prob) {
  LOKI_CHECK_MSG(fault_active_, "fault injection on an inert system");
  LOKI_CHECK(extra_delay_s >= 0.0 && drop_prob >= 0.0 && drop_prob < 1.0);
  net_extra_delay_s_ = extra_delay_s;
  net_drop_prob_ = drop_prob;
}

void ServingSystem::update_degraded() {
  const int dead = detector_.dead_count();
  degraded_ = dead > 0 && fault_epoch_ != planned_fault_epoch_;
  degraded_shed_frac_ =
      degraded_ ? std::min(0.9, static_cast<double>(dead) /
                                    std::max(1.0, static_cast<double>(
                                                      plan_.servers_used)))
                : 0.0;
  recompute_tier_probs();
}

void ServingSystem::resolve_stranded(int worker, double now) {
  auto& held = stranded_[static_cast<std::size_t>(worker)];
  if (held.empty()) return;
  std::vector<cluster::WorkItem> items;
  items.swap(held);
  if (!tiers_active_) {
    for (auto& item : items) {
      // Bounded retry-with-deadline: re-dispatch while the end-to-end
      // deadline still stands and the item has retries left; otherwise the
      // query is shed-by-failure.
      if (now <= item.deadline && item.retries < cfg_.fault_max_retries) {
        const int alt = pick_worker_for_task(item.task);
        if (alt >= 0) {
          ++item.retries;
          c_fault_stranded_retried_.add(1);
          item.enqueue_time = now;
          workers_[static_cast<std::size_t>(alt)]->enqueue(item);
          continue;
        }
      }
      c_fault_stranded_dropped_.add(1);
      drop_query_part(item.query_id, now, LossCause::kWorkerFailure);
    }
    return;
  }

  // Tiered stranded recovery: strict tiers re-dispatch first (earliest
  // deadline first within a tier — the resources freed by giving up on
  // hopeless best-effort items go to strict ones), and the fixed
  // immediate-retry budget becomes deterministic exponential backoff:
  // attempt r waits retry_backoff_s * 2^r, and is only worth dispatching
  // if it can still land with the tier's deadline headroom to spare.
  std::stable_sort(items.begin(), items.end(),
                   [](const cluster::WorkItem& a, const cluster::WorkItem& b) {
                     if (a.tier != b.tier) return a.tier < b.tier;
                     return a.deadline < b.deadline;
                   });
  for (auto& item : items) {
    const int tier =
        item.tier < 0 ? 0 : (item.tier >= kNumTiers ? kNumTiers - 1
                                                    : item.tier);
    const int shift = item.retries < 30 ? item.retries : 30;
    const double delay =
        cfg_.tiers.retry_backoff_s * static_cast<double>(1u << shift);
    const double headroom =
        cfg_.tiers.headroom_frac[static_cast<std::size_t>(tier)] *
        cfg_.allocator.slo_s;
    if (item.retries < cfg_.tiers.max_retries &&
        now + delay + headroom <= item.deadline) {
      ++item.retries;
      c_fault_stranded_retried_.add(1);
      c_degrade_retries_.add(1);
      cluster::WorkItem copy = item;
      sim_->schedule_after(delay, [this, copy]() mutable {
        const double t = sim_->now();
        const int alt = stopped_ ? -1 : pick_worker_for_task(copy.task);
        if (alt < 0) {
          // Run over, or still nowhere to go: shed-by-failure so the
          // per-tier accounting reconciles exactly.
          c_fault_stranded_dropped_.add(1);
          c_degrade_retry_given_up_.add(1);
          drop_query_part(copy.query_id, t, LossCause::kWorkerFailure);
          return;
        }
        copy.enqueue_time = t;
        workers_[static_cast<std::size_t>(alt)]->enqueue(copy);
      });
      continue;
    }
    c_fault_stranded_dropped_.add(1);
    c_degrade_retry_given_up_.add(1);
    drop_query_part(item.query_id, now, LossCause::kWorkerFailure);
  }
}

void ServingSystem::run_failure_detection(double now) {
  // Heartbeat reports from live, non-suppressed workers. Crashed workers
  // stop reporting (that *is* the failure signal); heartbeat-loss injection
  // suppresses reports while the worker keeps serving (false-positive
  // material — the quarantine costs capacity until the reports resume).
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    auto& w = *workers_[wi];
    if (w.crashed() || hb_suppressed_[wi]) continue;
    if (detector_.report(static_cast<int>(wi), w.incarnation(), now) ==
        fault::FailureDetector::ReportResult::kStale) {
      c_fault_stale_heartbeats_.add(1);
    }
  }
  detector_.evaluate(now);

  bool dead_set_changed = false;
  for (const auto& tr : detector_.drain_transitions()) {
    const std::size_t wi = static_cast<std::size_t>(tr.worker);
    if (metadata_ != nullptr) {
      metadata_->record_worker_event(tr.t, tr.worker, tr.incarnation,
                                     tr.from, tr.to);
    }
    switch (tr.to) {
      case fault::WorkerHealth::kSuspect:
        c_fault_suspects_.add(1);
        worker_quarantined_[wi] = 1;
        break;
      case fault::WorkerHealth::kDead:
        c_fault_dead_.add(1);
        worker_quarantined_[wi] = 1;
        dead_since_[wi] = now;
        if (crash_time_[wi] >= 0.0) {
          h_fault_detect_ns_.add(fault_ns(now - crash_time_[wi]));
        }
        // The controller now *knows*: retry/shed whatever was stranded.
        resolve_stranded(tr.worker, now);
        dead_set_changed = true;
        break;
      case fault::WorkerHealth::kAlive:
        worker_quarantined_[wi] = 0;
        if (tr.from == fault::WorkerHealth::kDead) {
          if (crash_time_[wi] >= 0.0) {
            h_fault_recovery_ns_.add(fault_ns(now - crash_time_[wi]));
            crash_time_[wi] = -1.0;
          }
          dead_since_[wi] = -1.0;
          dead_set_changed = true;
        }
        break;
    }
  }

  if (dead_set_changed) {
    ++fault_epoch_;
    update_degraded();
    // Event-driven re-planning over the surviving worker set. Externally-
    // planned systems surface the pending epoch to their coordinator via
    // fault_replan_pending() instead.
    if (!external_ && strategy_ != nullptr) {
      c_fault_replans_.add(1);
      run_resource_manager(/*force=*/true);
    }
  }
}

}  // namespace loki::serving
