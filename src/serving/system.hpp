// The serving system runtime: composes the Frontend, Controller (Resource
// Manager + Load Balancer + Metadata Store state), and the simulated worker
// cluster into the full query-processing loop of §3:
//
//   client -> Frontend -> first-task workers -> ... -> sinks -> Frontend
//
// with periodic control events: Resource Manager re-allocation (10 s in the
// paper), Load Balancer routing refresh, and worker heartbeats that report
// observed multiplicative factors. The runtime also implements the §5.2
// early-dropping policies (none / last-task / per-task / opportunistic
// rerouting), selected per experiment for the Fig. 7 ablation.
//
// The same runtime hosts Loki and both baselines: the allocation strategy is
// injected (MilpAllocator, baselines::InferLineStrategy,
// baselines::ProteusStrategy).
//
// Hot-path discipline (per arrival / per forwarded item): routing draws go
// through RoutingPlan::DrawTable (flat cumulative thresholds, branchless
// binary search — bit-identical to the linear scan); replica selection scans
// the packed per-worker load-cell array instead of dereferencing Worker
// objects; latency budgets read a dense per-(task, variant) LUT rebuilt at
// plan install (AllocationPlan keeps the map as its serialization form);
// fan-out bookkeeping reuses member scratch buffers. Steady-state query flow
// performs no heap allocation outside pool growth.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/worker.hpp"
#include "common/pool.hpp"
#include "common/rng.hpp"
#include "fault/detector.hpp"
#include "serving/degrade.hpp"
#include "fault/plan.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pipeline/graph.hpp"
#include "serving/allocation.hpp"
#include "serving/load_balancer.hpp"
#include "serving/metadata_store.hpp"
#include "serving/metrics.hpp"
#include "serving/types.hpp"
#include "sim/simulation.hpp"
#include "trace/demand_estimator.hpp"

namespace loki::serving {

/// Early-dropping policy (§5.2, ablated in Fig. 7).
enum class DropPolicy { kNone, kLastTask, kPerTask, kOpportunisticReroute };

std::string to_string(DropPolicy p);

struct SystemConfig {
  AllocatorConfig allocator;
  /// Resource Manager invocation period (§4.2 uses 10 s).
  double rm_period_s = 10.0;
  /// Load Balancer refresh period between RM runs (§5.1).
  double lb_period_s = 2.0;
  /// Worker heartbeat period (multiplicative-factor reports, §3).
  double heartbeat_period_s = 1.0;
  double metrics_window_s = 10.0;
  DropPolicy drop_policy = DropPolicy::kOpportunisticReroute;
  /// Relative jitter on worker execution times (0 = deterministic; the
  /// simulator-validation bench uses this to model the prototype gap).
  double exec_noise_frac = 0.0;
  /// Relative jitter on network hops.
  double comm_jitter_frac = 0.0;
  /// Straggler batches: with this probability a batch runs 1.5x..scale
  /// slower (models contention/throttling on a physical cluster).
  double straggler_prob = 0.0;
  double straggler_scale = 3.0;
  /// Pay model-load latency when a worker changes variant.
  bool model_swap_cost = true;
  /// Rolling-update bound: at most this many *serving* workers swap their
  /// variant concurrently after a plan change. The rest keep serving their
  /// old variant (same task, different accuracy point) until their turn, so
  /// a re-allocation never craters cluster capacity.
  int max_concurrent_swaps = 5;
  /// EWMA weight for observed multiplicative factors.
  double mult_ewma_alpha = 0.3;
  /// Re-allocation hysteresis: the Resource Manager keeps the current plan
  /// when the demand estimate moved less than this relative amount since the
  /// last allocation. Prevents variant-flapping (and the model-swap storms
  /// it causes) when demand is merely noisy.
  double realloc_threshold = 0.06;
  /// Queries arriving before this time are served but not counted in the
  /// metrics (deployment warm-up; the cluster starts empty).
  double metrics_warmup_s = 0.0;
  /// Worker micro-batching wait (0 = serve immediately).
  double batch_wait_s = 0.0;
  trace::DemandEstimatorConfig demand;
  std::uint64_t seed = 1234;
  /// Observability (src/obs): registry receiving this system's counters and
  /// histograms (nullptr = obs::Registry::global(); experiment drivers pass
  /// a per-run registry so concurrent runs never mix series), the metric
  /// name prefix, and sampled per-request stage attribution. Tracing
  /// defaults ON — the always-on discipline of ROADMAP item 5 — and is
  /// differential-tested to leave every simulation metric bit-identical.
  obs::Registry* registry = nullptr;
  std::string metric_prefix = "serving";
  obs::TraceOptions trace;
  /// Fault injection schedule (src/fault). An *empty* plan with the detector
  /// disabled keeps the whole fault subsystem inert: no counters registered,
  /// no RNG drawn, no events armed — differential-tested bit-identical to a
  /// build without it. A non-empty plan auto-enables the failure detector.
  fault::FaultPlan fault_plan;
  /// Heartbeat-timeout failure detection (phi thresholds / report period).
  /// detector.enabled turns the subsystem on even with an empty plan (e.g.
  /// when faults are injected via the inject_* entry points directly).
  fault::DetectorConfig detector;
  /// Bounded retry for queries stranded on a dead worker: re-dispatched at
  /// detection time while their deadline still stands and they have retries
  /// left; shed-by-failure otherwise. When tiers are enabled the TierPolicy
  /// backoff schedule replaces this fixed budget.
  int fault_max_retries = 2;
  /// Graceful degradation (src/serving/degrade.hpp). Tiers off keeps the
  /// data plane bit-identical to the untiered system; fallback off keeps
  /// plan() a direct strategy call. Differential-tested inert.
  TierPolicy tiers;
  FallbackConfig fallback;
};

class ServingSystem {
 public:
  /// `graph` and `strategy` must outlive the system. `profiles` is the
  /// Metadata Store's profiled q(i,k,b) table shared with the strategy.
  /// `strategy` may be nullptr only for externally-planned systems (see
  /// start_external): such a system never runs its own Resource Manager.
  ServingSystem(sim::Simulation* sim, const pipeline::PipelineGraph* graph,
                ProfileTable profiles, AllocationStrategy* strategy,
                SystemConfig cfg);
  ~ServingSystem();

  ServingSystem(const ServingSystem&) = delete;
  ServingSystem& operator=(const ServingSystem&) = delete;

  /// Performs the initial allocation and schedules the periodic control
  /// events. Call once before submitting queries.
  void start();

  /// Externally-planned (coordinated) mode: schedules only the Load
  /// Balancer and heartbeat loops — no Resource Manager. A coordinator
  /// (e.g. the intra-cluster-sharded experiment driver) pushes plans via
  /// install_plan() at parallel-simulation window barriers. Call once,
  /// instead of start().
  void start_external();

  /// Applies a plan produced outside this system (coordinated mode): worker
  /// placement, routing refresh, allocation metrics. The plan's
  /// solve_time_s is NOT added to total_solve_time_s() — the coordinator
  /// accounts the (shared) solve once.
  void install_plan(AllocationPlan plan);

  /// Client query arriving now (drives one end-to-end pipeline execution).
  /// Equivalent to submit(0): untiered callers produce strict-tier traffic.
  void submit();
  /// Tiered submission (0 = strict, 1 = standard, 2 = best-effort; clamped).
  /// With cfg.tiers.enabled this runs priority-aware admission control and
  /// shedding; otherwise the tier only labels the per-tier accounting.
  void submit(int tier);

  /// Stops periodic events and flushes metrics windows at `t_end`.
  void finish(double t_end);

  /// Attaches a Metadata Store (§3) that records demand estimates, plan
  /// history and multiplicative-factor estimates as the controller works.
  void attach_metadata_store(MetadataStore* store);

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  const AllocationPlan& current_plan() const { return plan_; }
  const RoutingPlan& current_routing() const { return routing_; }
  const pipeline::MultFactorTable& mult_estimates() const {
    return mult_estimates_;
  }
  /// Workers currently hosting an instance.
  int active_workers() const;
  /// Total allocation-solve wall time spent so far (RM overhead, §6.5).
  double total_solve_time_s() const { return total_solve_time_s_; }
  int allocations_performed() const { return allocations_; }

  /// Current frontend demand estimate (coordinated-mode input merging).
  double demand_estimate_now() { return demand_.estimate(sim_->now()); }
  /// Drains the per-task arrival-rate window (coordinated-mode input
  /// merging; the in-process Resource Manager calls the private form).
  std::vector<double> drain_task_arrivals_now() {
    return drain_task_arrivals(sim_->now());
  }

  /// Aggregated per-stage hot-path counters across the whole cluster
  /// (queue wait / batching / execute / swap stalls). Semantics: monotonic
  /// since system construction — apply_plan / install_plan re-installs,
  /// worker reassignments and deactivations never reset them, so two
  /// snapshots straddling any number of plan changes subtract into the
  /// exact work done in between. Deltas are also published into the
  /// registry (<prefix>.stage.*) at every heartbeat and at finish().
  cluster::StageCounters stage_counters() const;

  /// The sampled per-request tracer (for tests and coordinators).
  const obs::QueryTracer& tracer() const { return tracer_; }

  // --- Fault subsystem (src/fault) -------------------------------------
  // Entry points invoked by the armed FaultPlan; tests and chaos drivers
  // may also call them directly (requires fault_active()).

  /// Worker dies now: queue + in-flight batch are stranded (held until the
  /// detector declares the worker dead, or recovery — whichever first).
  void inject_worker_crash(int worker);
  /// Crashed worker returns empty with a bumped incarnation.
  void inject_worker_recover(int worker);
  /// Execute-time multiplier for batches started from now on (1 = healthy).
  void inject_straggler(int worker, double mult);
  /// Suppress (lost = true) or restore this worker's heartbeat reports; the
  /// worker keeps serving (failure-detector false-positive material).
  void inject_heartbeat_loss(int worker, bool lost);
  /// Cluster-wide network degradation: extra forward delay + drop prob.
  void inject_network_degrade(double extra_delay_s, double drop_prob);

  /// True when the fault subsystem is armed (non-empty plan or detector
  /// explicitly enabled). False = all fault state is inert (passivity).
  bool fault_active() const { return fault_active_; }
  int crashed_workers() const;
  /// Workers the failure detector currently believes dead (0 if inert).
  int detector_dead_workers() const {
    return fault_active_ ? detector_.dead_count() : 0;
  }
  /// True when the detector's view of the dead set changed since the last
  /// plan was produced — coordinators poll this at window barriers to
  /// trigger event-driven re-planning.
  bool fault_replan_pending() const {
    return fault_active_ && fault_epoch_ != planned_fault_epoch_;
  }
  /// Degraded overload mode: dead capacity not yet re-planned around.
  bool degraded() const { return degraded_; }
  const fault::FailureDetector& failure_detector() const { return detector_; }

  // --- Graceful degradation (src/serving/degrade.hpp) -------------------

  /// True when tiered admission/shedding runs (cfg.tiers.enabled).
  bool tiers_active() const { return tiers_active_; }
  /// Current per-tier serve probabilities under overload ({1,1,1} at full
  /// service). Diagnostics/tests.
  const std::array<double, kNumTiers>& tier_serve_probabilities() const {
    return tier_serve_probs_;
  }
  /// Fallback-chain accounting (all zero when the chain is disabled).
  std::uint64_t plan_fallbacks() const { return plan_fallbacks_; }
  std::uint64_t plan_rejects() const { return plan_rejects_; }
  std::uint64_t plans_retained() const { return plans_retained_; }
  /// Rung that produced the most recent plan (0 primary .. 3 retained).
  int last_plan_rung() const { return last_plan_rung_; }

 private:
  struct QueryState {
    double arrival = 0.0;
    double deadline = 0.0;
    int outstanding = 0;
    bool dropped = false;
    bool metered = true;  // false during the warm-up window
    /// Why the query was lost (first drop wins; kCapacity when not fault-
    /// related — the pre-fault-subsystem behavior).
    LossCause cause = LossCause::kCapacity;
    double accuracy_sum = 0.0;
    int sink_completions = 0;
    /// SLO tier (0 strict .. 2 best-effort); drives per-tier accounting.
    int tier = 0;
  };

  /// One committed fan-out decision awaiting dispatch (scratch-pooled).
  struct PendingForward {
    int group;
    int count;
    int child_task;
  };

  void on_batch_done(cluster::Worker& w, std::vector<cluster::WorkItem>& items,
                     const cluster::Worker::BatchContext& ctx);
  void on_dropped_items(cluster::Worker& w,
                        std::vector<cluster::WorkItem>& items);
  bool last_task_filter(const cluster::Worker& w,
                        const cluster::WorkItem& item) const;

  /// `force` skips the demand hysteresis (failure re-plans must always
  /// produce a fresh plan over the surviving workers).
  void run_resource_manager(bool force = false);
  void run_load_balancer();
  void run_heartbeat();
  /// Folds heartbeat reports into the failure detector and handles health
  /// transitions (quarantine, stranded-query resolution, re-planning).
  void run_failure_detection(double now);
  /// Retries or sheds the items stranded on a crashed worker.
  void resolve_stranded(int worker, double now);
  /// Recomputes degraded-mode state from the detector's dead count and the
  /// pending-re-plan flag.
  void update_degraded();
  /// Folds the per-tier arrival window into the EWMA tier shares (no RNG;
  /// no-op when tiers are off) and refreshes the shed probabilities.
  void refresh_tier_shares();
  /// Rebuilds the per-tier serve/shed probability fills from the plan's
  /// served fraction, the degraded shed fraction and the current shares.
  void recompute_tier_probs();
  /// Arms cfg_.fault_plan as simulation events (no-op when empty).
  void arm_configured_faults();
  /// Schedules the periodic control loops (RM only when `with_rm`).
  void schedule_control_loops(bool with_rm);

  void apply_plan(AllocationPlan plan);
  void redistribute(std::vector<cluster::WorkItem>&& items);
  /// Starts deferred swaps while under the concurrency bound.
  void kick_pending_swaps();

  /// Picks a group from a flattened route table; -1 when the draw lands in
  /// the unplaced remainder (shed/drop). Empty tables short-circuit before
  /// drawing (the routing RNG stream must advance exactly as often as the
  /// pre-table runtime did — bit-reproducibility).
  int pick_group(const RoutingPlan::DrawTable& table);
  /// Least-loaded active worker of a group; -1 if the group has none.
  /// When the fault subsystem is active, quarantined (suspect/dead) workers
  /// are skipped first and reconsidered only if nothing else is available.
  int pick_worker(int group) const;
  /// Least-loaded active worker hosting `task` (any variant).
  int pick_worker_for_task(int task) const;
  int scan_group(int group, bool skip_quarantined) const;
  int scan_task(int task, bool skip_quarantined) const;
  /// True while any worker is crashed. Routing-gap losses (no staffed
  /// group / no worker for a task) during an outage are crash collateral
  /// and attributed to kWorkerFailure, not to shedding policy; only the
  /// loss paths call this, so the O(workers) scan is off the hot path.
  bool any_worker_crashed() const;

  void forward_item(cluster::WorkItem item, int group);
  /// Expected remaining time budget below `task` (mean per-task budgets of
  /// the plan plus per-hop comm), for the rerouting feasibility test.
  double descendant_budget(int task) const {
    return desc_budget_[static_cast<std::size_t>(task)];
  }
  void recompute_descendant_budgets();
  /// Rebuilds the dense per-(task, variant) latency-budget LUT from the
  /// freshly installed plan's map.
  void rebuild_budget_lut();
  void drop_query_part(std::uint64_t query_id, double now,
                       LossCause cause = LossCause::kCapacity);
  void complete_part(std::uint64_t query_id, double now);
  double runtime_budget(int task, int variant, int batch) const;
  double comm_delay();
  /// Publishes the delta of the aggregate stage counters since the last
  /// publication into the registry (pull model: workers bump plain members
  /// on the hot path; only this cold path touches atomics).
  void publish_stage_counters();

  sim::Simulation* sim_;
  const pipeline::PipelineGraph* graph_;
  ProfileTable profiles_;
  AllocationStrategy* strategy_;
  SystemConfig cfg_;

  LoadBalancer lb_;
  Metrics metrics_;
  trace::DemandEstimator demand_;

  AllocationPlan plan_;
  RoutingPlan routing_;
  std::vector<double> desc_budget_;  // per task
  pipeline::MultFactorTable mult_estimates_;

  // Pipeline-graph lookups cached at construction: root() and
  // branch_ratio() are linear scans inside the graph, and the completion
  // path consults them per arrival / per detected object.
  int root_task_ = 0;
  std::vector<std::vector<double>> branch_ratios_;  // [task][child index]

  // Dense latency-budget LUT: budget_lut_[budget_off_[task] + variant],
  // -1 when the current plan has no (task, variant) entry (fall back to the
  // profiled-latency rule). Rebuilt by rebuild_budget_lut() at plan install;
  // AllocationPlan::latency_budget_s (std::map) stays the authoring and
  // serialization form (plan_io).
  std::vector<std::size_t> budget_off_;  // per task, catalog-size prefix sums
  std::vector<double> budget_lut_;

  std::vector<std::unique_ptr<cluster::Worker>> workers_;
  /// Packed per-worker load cells published by the workers themselves
  /// (cluster::Worker::bind_load_cell): replica selection reads 4 bytes per
  /// candidate instead of chasing a unique_ptr and three flags. Parallel
  /// array worker_task_ mirrors each worker's hosted task (-1 inactive) for
  /// the any-worker-of-task fallback scan.
  std::vector<std::uint32_t> worker_load_;
  std::vector<int> worker_task_;
  std::vector<std::vector<int>> group_workers_;  // plan group -> worker ids
  std::vector<int> worker_group_;                // worker id -> group (-1)
  std::deque<std::pair<int, int>> pending_swaps_;  // (worker id, group)
  int swaps_in_flight_ = 0;

  /// Per-query state in a generation-checked slab pool: the query id carried
  /// by WorkItems *is* the pool handle, so the completion path resolves it
  /// with an index + generation check instead of hashing, and finalized
  /// queries recycle their slot in O(1). Stale ids (parts arriving after the
  /// query finalized) resolve to nullptr, same as the old map-miss path.
  HandlePool<QueryState> queries_;

  /// Observed per-task arrival rates since the last plan request, handed to
  /// the strategy inside PlanRequest::task_arrivals_qps (pipeline-agnostic
  /// strategies consume these instead of propagating demand). Resets the
  /// accumulation window and returns empty when no time has elapsed.
  std::vector<double> drain_task_arrivals(double now);

  // Observed multiplicative factors since the last heartbeat.
  std::vector<std::vector<double>> obs_in_;   // [task][variant]
  std::vector<std::vector<double>> obs_out_;  // [task][variant]
  std::vector<double> task_window_arrivals_;  // per task, since last plan
  double arrivals_window_start_ = 0.0;

  // Fan-out scratch reused across items (capacity survives; the completion
  // path never allocates in steady state).
  std::vector<int> scratch_child_counts_;
  std::vector<PendingForward> scratch_forwards_;

  Rng rng_routing_;
  Rng rng_mult_;
  Rng rng_jitter_;
  Rng rng_shed_;
  /// Fault-path randomness (degraded shedding, network drops). A dedicated
  /// substream: drawing here never perturbs the four streams above, and it
  /// is only drawn when the fault subsystem is active (passivity).
  Rng rng_fault_;

  // --- Fault subsystem state (all inert when fault_active_ is false) ----
  bool fault_active_ = false;
  fault::FailureDetector detector_;
  std::vector<char> worker_quarantined_;  // suspect/dead: no new routing
  std::vector<char> hb_suppressed_;       // heartbeat-loss injection
  std::vector<double> crash_time_;        // -1 = not crashed (latency attr.)
  std::vector<double> dead_since_;        // -1 = not declared dead
  /// Items stranded per crashed worker, held until the detector declares
  /// the worker dead (retry/shed) or the worker recovers first.
  std::vector<std::vector<cluster::WorkItem>> stranded_;
  double net_extra_delay_s_ = 0.0;
  double net_drop_prob_ = 0.0;
  bool degraded_ = false;
  double degraded_shed_frac_ = 0.0;
  /// Bumped whenever the detector's dead set changes; a plan produced at
  /// epoch e records planned_fault_epoch_ = e. Mismatch = re-plan pending.
  int fault_epoch_ = 0;
  int planned_fault_epoch_ = 0;
  obs::Counter c_fault_crashes_;
  obs::Counter c_fault_recoveries_;
  obs::Counter c_fault_suspects_;
  obs::Counter c_fault_dead_;
  obs::Counter c_fault_stranded_retried_;
  obs::Counter c_fault_stranded_dropped_;
  obs::Counter c_fault_degraded_shed_;
  obs::Counter c_fault_net_drops_;
  obs::Counter c_fault_replans_;
  obs::Counter c_fault_stale_heartbeats_;
  obs::Histogram h_fault_detect_ns_;
  obs::Histogram h_fault_recovery_ns_;

  // --- Graceful degradation (inert unless tiers/fallback enabled) -------
  bool tiers_active_ = false;
  /// EWMA per-tier arrival shares driving the shed-probability fills. The
  /// first non-empty window seeds them exactly, and a bit-identical window
  /// skips the blend — single-tier traffic stays at exactly {1, 0, 0} so
  /// the tiered shed comparisons reproduce the untiered ones bit-for-bit.
  std::array<double, kNumTiers> tier_shares_ = {1.0, 0.0, 0.0};
  bool tier_shares_seeded_ = false;
  std::array<double, kNumTiers> tier_window_arrivals_{};
  /// In-flight admitted queries per tier (watermark admission control).
  std::array<std::int64_t, kNumTiers> tier_inflight_{};
  std::array<double, kNumTiers> tier_serve_probs_ = {1.0, 1.0, 1.0};
  std::array<double, kNumTiers> tier_degraded_shed_{};
  /// Deadline-enforced plan() fallback chain (built when cfg.fallback is
  /// enabled and the system owns its Resource Manager).
  std::unique_ptr<PlanFallbackChain> fallback_chain_;
  std::uint64_t plan_fallbacks_ = 0;
  std::uint64_t plan_rejects_ = 0;
  std::uint64_t plans_retained_ = 0;
  int last_plan_rung_ = 0;
  obs::Counter c_degrade_admission_shed_;
  obs::Counter c_degrade_overload_shed_;
  obs::Counter c_degrade_remainder_rescued_;
  obs::Counter c_degrade_retries_;
  obs::Counter c_degrade_retry_given_up_;
  obs::Counter c_degrade_plan_fallbacks_;
  obs::Counter c_degrade_plan_rejects_;
  obs::Counter c_degrade_plan_retained_;

  /// Per-request stage attribution; shared with every worker via
  /// set_tracer(). Histograms land in the configured registry under
  /// cfg_.metric_prefix.
  obs::QueryTracer tracer_;
  /// Stage totals already pushed to the registry (delta publication).
  cluster::StageCounters published_stage_;
  obs::Counter c_admitted_;
  obs::Counter c_stage_enqueued_;
  obs::Counter c_stage_queue_ns_;
  obs::Counter c_stage_batches_;
  obs::Counter c_stage_batch_items_;
  obs::Counter c_stage_execute_ns_;
  obs::Counter c_stage_swaps_;
  obs::Counter c_stage_swap_ns_;

  MetadataStore* metadata_ = nullptr;
  /// Owners of the self-rescheduling control-loop callbacks. The scheduled
  /// lambdas hold weak_ptrs into these, so destroying the system breaks the
  /// reschedule cycle instead of leaking it.
  std::vector<std::shared_ptr<std::function<void()>>> periodic_;
  bool started_ = false;
  bool stopped_ = false;
  bool external_ = false;
  bool has_plan_ = false;
  double last_alloc_demand_ = 0.0;
  double total_solve_time_s_ = 0.0;
  int allocations_ = 0;
};

}  // namespace loki::serving
