// The Resource Manager's allocator (§4): formulates hardware scaling and
// accuracy scaling as MILPs over the augmented pipeline graph and solves
// them with the branch-and-bound solver, seeded by a greedy incumbent.
//
// Linearization (DESIGN.md §2): the paper's q(i,k,y(i,k)) term is nonlinear
// in the batch variable y. We enumerate a small grid of latency-budget
// splits across pipeline depth levels; a split fixes the best feasible
// batch per (task, variant), after which the model is a pure MILP with
// integer instance counts n(i,k) and continuous path flows c(p). Taking the
// best solution across splits recovers the batch-size degree of freedom.
// The same budget split yields the per-task latency budgets that §5.2's
// early-dropping policies consume.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/thread_pool.hpp"
#include "pipeline/paths.hpp"
#include "profile/profiler.hpp"
#include "serving/types.hpp"
#include "solver/milp.hpp"

namespace loki::serving {

struct AllocatorConfig {
  int cluster_size = 20;
  /// End-to-end pipeline latency SLO (seconds).
  double slo_s = 0.250;
  /// Homogeneous per-hop network latency between workers (§4.2 subtracts
  /// hop-count * comm from the SLO before allocating).
  double comm_latency_s = 0.002;
  /// Queueing headroom rule from §4.1: plan within SLO * queue_factor
  /// (the paper divides the SLO by two).
  double queue_factor = 0.5;
  /// Grid resolution for splitting the latency budget across depth levels.
  int budget_grid = 7;
  /// Per-replica objective bonus for keeping a variant that the previous
  /// plan already hosts (avoids swap storms). In system-accuracy units.
  double continuity_bonus = 2e-4;
  /// Provisioning utilization target: capacity constraints use
  /// q_eff = utilization_target * q so queues stay stable. Planning to 100%
  /// of profiled throughput leaves no queueing headroom and the SLO/2 rule
  /// no longer holds under stochastic arrivals; 0.85 keeps single-replica
  /// groups (the low-demand regime) out of the heavy-queueing region.
  double utilization_target = 0.85;
  /// Cross-epoch warm starts: when a step's MILP model is bit-identical to
  /// the previous epoch's (steady demand within the re-allocation
  /// hysteresis), re-solve it from the previous epoch's retained basis
  /// instead of a cold root solve. Plans are bit-identical either way; this
  /// only changes how many pivots the re-solve costs. Benches measuring
  /// cold re-plan latency switch it off.
  bool warm_start_across_epochs = true;
  /// Opt-in near-identical warm tier (default OFF so existing plans stay
  /// bit-identical): when the bit-identical gate fails only on drifted
  /// coefficients — same model shape, sparsity, bounds and integrality,
  /// e.g. a slow demand ramp — crash-start the step's root LP from the
  /// previous epoch's retained basis and seed branch-and-bound with the
  /// previous incumbent, instead of cold-solving. Plans may then drift
  /// within the MILP optimality gap (they are still exact solves of the
  /// *current* model; only pivot counts and tie-breaking change relative
  /// to a cold solve).
  bool near_warm_start = false;
  solver::MilpOptions milp = default_milp_options();

  static solver::MilpOptions default_milp_options();
};

/// Per-(task, variant) batch configuration chosen by a budget split.
struct VariantConfig {
  int variant = -1;
  int batch = -1;
  double throughput_qps = 0.0;  // q(i,k,b*) at the chosen batch
  double latency_s = 0.0;       // profiled batch execution latency
};

/// Exact equality — the selective-invalidation check: a re-profiled variant
/// whose chosen config is bit-identical under a split's budgets invalidates
/// nothing in that split.
inline bool operator==(const VariantConfig& a, const VariantConfig& b) {
  return a.variant == b.variant && a.batch == b.batch &&
         a.throughput_qps == b.throughput_qps && a.latency_s == b.latency_s;
}
inline bool operator!=(const VariantConfig& a, const VariantConfig& b) {
  return !(a == b);
}

/// Profiles for every variant of every task: profiles[task][variant].
using ProfileTable = std::vector<std::vector<profile::BatchProfile>>;

/// Feasible configs per task under some latency budgets: configs[task][j].
using ConfigTable = std::vector<std::vector<VariantConfig>>;

/// Builds the profile table for a pipeline with the given profiler.
ProfileTable build_profile_table(const pipeline::PipelineGraph& g,
                                 const profile::ModelProfiler& profiler);

/// The latency-budget split grid: each entry is a positive weight vector
/// over pipeline depth levels (compositions of `budget_grid` parts).
std::vector<std::vector<double>> budget_splits(const AllocatorConfig& cfg,
                                               const pipeline::PipelineGraph& g);

/// Per-task latency budget for one split: the task at depth d on a path to
/// sink s gets weight[d] / (sum of weights on that path) of the path's
/// planning budget (SLO * queue_factor - hops * comm); tasks shared by
/// several sinks take the minimum.
std::vector<double> task_budgets_for_split(
    const AllocatorConfig& cfg, const pipeline::PipelineGraph& g,
    const std::vector<double>& level_weights);

/// The best-throughput latency-feasible batch config per (task, variant);
/// variants with no feasible batch are omitted. Throughputs are derated by
/// `utilization_target` (latencies stay profiled).
ConfigTable feasible_configs(const pipeline::PipelineGraph& g,
                             const ProfileTable& profiles,
                             const std::vector<double>& task_budgets,
                             double utilization_target = 1.0);

/// Greedy allocator used (a) to seed the MILP with an incumbent and (b) as
/// the ablation baseline for bench/abl_allocator. Picks one variant per
/// task, starting from the most accurate assignment and repeatedly
/// degrading the task with the best server-savings-per-accuracy-loss until
/// the demand fits the cluster (the intuition behind Fig. 1's phases).
class GreedyAllocator : public AllocationStrategy {
 public:
  GreedyAllocator(AllocatorConfig cfg, const pipeline::PipelineGraph* graph,
                  ProfileTable profiles);

  PlanResult plan(const PlanRequest& request) override;
  std::string name() const override { return "greedy"; }

 private:
  /// Budgets + feasible configs per budget split. Depends only on
  /// construction inputs, so it is computed once on first use and shared by
  /// the main loop and the overload fallback (they used to recompute
  /// identical tables per split).
  struct SplitConfigs {
    std::vector<double> budgets;
    ConfigTable configs;
  };
  const std::vector<SplitConfigs>& split_configs();

  AllocatorConfig cfg_;
  const pipeline::PipelineGraph* graph_;
  ProfileTable profiles_;
  std::vector<std::vector<double>> splits_;
  std::vector<SplitConfigs> split_configs_;
  bool split_configs_ready_ = false;
};

/// Loki's MILP allocator (§4.1): step 1 hardware scaling (minimize servers,
/// most-accurate variants only), step 2 accuracy scaling (maximize system
/// accuracy with the full cluster), step 3 overload (maximize served
/// fraction, then accuracy).
class MilpAllocator : public AllocationStrategy {
 public:
  MilpAllocator(AllocatorConfig cfg, const pipeline::PipelineGraph* graph,
                ProfileTable profiles);
  ~MilpAllocator() override;

  PlanResult plan(const PlanRequest& request) override;
  std::string name() const override { return "loki-milp"; }

  const AllocatorConfig& config() const { return cfg_; }

  /// Drops all EpochContext state (cached budget splits / feasible configs
  /// and every retained solver basis), forcing the next plan() to rebuild
  /// and cold-solve everything. Plans are unaffected.
  void reset_epoch_context();

  /// Applies a re-profiled variant (a profile-table update) and invalidates
  /// only the EpochContext caches it actually affects, instead of the
  /// reset_epoch_context() sledgehammer: budget splits and task budgets
  /// never depend on profiles and always survive; a split keeps its
  /// feasible-config tables, path enumerations, and retained solver
  /// sessions whenever the variant's chosen config under that split's
  /// budgets is unchanged; and the hardware-step caches are dropped only
  /// when the task's most-accurate-variant view changed. Subsequent plans
  /// are exactly what a full reset would produce — only the amount of
  /// retained warm-start state differs.
  void update_profile(int task, int variant,
                      const profile::BatchProfile& profile);

  /// Explicit cross-epoch state (defined in allocation.cpp). Owns, per
  /// budget split: the cached task budgets, feasible-config tables and
  /// augmented-graph path enumerations (recomputed per solve before this
  /// existed — the allocator-overhead bound of BM_ResourceManagerMilp/100),
  /// and per (split, allocation step) one persistent solver::ResolveSession
  /// whose retained basis warm-starts the next epoch's re-solve when the
  /// step model is bit-identical (see AllocatorConfig::
  /// warm_start_across_epochs). This is the state the old API hid inside
  /// prev_variants_ and per-call locals, now named and resettable.
  struct EpochContext;

 private:
  struct MilpResult {
    bool feasible = false;
    AllocationPlan plan;
    /// Counters for every branch-and-bound run in this step, captured even
    /// when the step is infeasible (the caller aggregates across splits).
    SolverStats stats;
  };

  /// Lazily builds the per-split caches of the EpochContext.
  void ensure_epoch_context();

  /// Solves one MILP for one budget split (index into the cached splits).
  /// `hardware_only` restricts each task to its most accurate variant and
  /// minimizes servers; otherwise maximizes accuracy. `served_fraction_mode`
  /// relaxes the demand constraint and maximizes the served fraction first.
  /// `prev_variants` (per task, per variant) marks variants hosted by the
  /// request's previous plan for the continuity bonus.
  MilpResult solve_step(std::size_t split_idx, double demand_qps,
                        const pipeline::MultFactorTable& mult,
                        const std::vector<std::vector<bool>>& prev_variants,
                        bool hardware_only, bool served_fraction_mode);

  AllocatorConfig cfg_;
  const pipeline::PipelineGraph* graph_;
  ProfileTable profiles_;
  std::unique_ptr<EpochContext> epoch_;
  /// Budget-split MILPs are independent; they solve concurrently. The pool
  /// is lazily sized to the split count.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace loki::serving
