// Shared types for the serving layer: resource-allocation plans and the
// strategy interface implemented by Loki and the two baselines.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/paths.hpp"

namespace loki::solver {
struct MilpSolution;
}  // namespace loki::solver

namespace loki::serving {

/// Which regime produced the plan (§4: hardware scaling first, accuracy
/// scaling when the cluster is exhausted, overload when even the cheapest
/// variants cannot meet demand).
enum class ScalingMode { kHardware, kAccuracy, kOverload };

std::string to_string(ScalingMode m);

/// One instance group of the plan: `replicas` workers all hosting variant
/// `variant` of task `task`, configured with maximum batch size `batch`.
struct InstanceConfig {
  int task = -1;
  int variant = -1;
  int batch = 1;
  int replicas = 0;
};

/// Fraction of a sink's queries assigned to one augmented-graph path
/// (the c(p) of the MILP).
struct PathFlow {
  pipeline::VariantPath path;
  double fraction = 0.0;
};

/// Aggregated branch-and-bound counters over every MILP solved while
/// producing one plan (all budget splits, all allocation steps). Runtime
/// diagnostics only — not serialized by plan_io. Read against
/// bench/tab_runtime_overhead and bench/abl_solver for regression tracking.
struct SolverStats {
  int milp_solves = 0;           // BranchAndBound::solve invocations
  int nodes_explored = 0;        // nodes whose LP relaxation was solved
  int nodes_pruned = 0;          // nodes discarded before any LP work
  int lp_iterations = 0;         // simplex pivots + bound flips, all nodes
  int lp_phase1_iterations = 0;  // pivots spent restoring feasibility
  int warm_start_hits = 0;       // node LPs resolved from a reused basis
  int cold_solves = 0;           // node LPs that ran a full two-phase solve
  /// MILP solves whose root LP warm-started from a basis retained by a
  /// *previous* plan() call (cross-epoch warm start, EpochContext).
  int epoch_warm_hits = 0;
  /// Step verdicts ("this model is infeasible / yields no plan") reused
  /// wholesale because the model was bit-identical to the previous epoch's;
  /// no solver work was spent at all.
  int epoch_cache_skips = 0;
  /// MILP solves whose root LP crash-started from a *near-identical*
  /// previous epoch's basis (same model shape, drifted coefficients — the
  /// opt-in near warm tier; the tree search still ran).
  int near_warm_hits = 0;
  /// Devex reference-frame resets across all node LPs.
  int devex_resets = 0;
  /// Rows / columns presolve removed before the tableaus were built,
  /// summed over all MILP solves.
  int presolve_rows_removed = 0;
  int presolve_cols_removed = 0;
  /// Largest |best bound - incumbent| any branch-and-bound run reported
  /// (0 when every solve proved optimality): how far any plan of this
  /// epoch can sit from its model's true optimum.
  double max_gap = 0.0;

  SolverStats& operator+=(const SolverStats& o);
  /// Folds one branch-and-bound result into the tally (bumps milp_solves).
  void add(const solver::MilpSolution& sol);
};

/// Output of the Resource Manager (§4.1): model variants to host, their
/// replication factors and max batch sizes, plus the planned path flows the
/// Load Balancer turns into routing tables.
struct AllocationPlan {
  ScalingMode mode = ScalingMode::kHardware;
  std::vector<InstanceConfig> instances;
  std::vector<PathFlow> flows;

  /// Planned system accuracy (averaged across sinks; Eq. 12 objective).
  double expected_accuracy = 1.0;
  /// Fraction of incoming demand the plan serves (< 1 only in overload).
  double served_fraction = 1.0;
  int servers_used = 0;
  double demand_qps = 0.0;
  /// Runtime latency budget per (task, variant): 2x the configured batch
  /// execution latency (the SLO/2 queueing rule of §4.1 unwound for
  /// runtime checks; §5.2 uses these budgets for early dropping).
  std::map<std::pair<int, int>, double> latency_budget_s;
  double solve_time_s = 0.0;
  /// Solver work behind this plan (zero for non-MILP strategies).
  SolverStats solver;
  bool feasible = true;

  int total_replicas() const;
  /// Replicas hosting (task, variant) summed over batch configs.
  int replicas_of(int task, int variant) const;
};

/// Everything the Resource Manager knows when it asks for a plan (one
/// control epoch, §4.2). Replaces the old positional allocate(demand, mult)
/// call and the observe_task_demand() side-channel: all controller-observed
/// state travels in the request, and all cross-epoch strategy state is
/// either here (previous_plan) or explicitly owned by the strategy (e.g.
/// MilpAllocator's EpochContext).
struct PlanRequest {
  /// Frontend demand estimate (QPS) the plan must serve.
  double demand_qps = 0.0;
  /// Current multiplicative-factor estimates per (task, variant).
  pipeline::MultFactorTable mult;
  /// Observed arrival rate (QPS) per task since the last plan request.
  /// Empty when nothing was observed yet (first epoch / offline probes).
  /// Pipeline-agnostic strategies (Proteus) consume this instead of
  /// propagating demand through the pipeline structure.
  std::vector<double> task_arrivals_qps;
  /// Simulation / wall time at which the request was issued (seconds).
  double sim_time_s = 0.0;
  /// Monotone control-epoch index (0 for the first request).
  int epoch = 0;
  /// View of the plan currently applied on the cluster, or nullptr on the
  /// first epoch. Not owned; must stay alive for the duration of plan().
  /// Strategies use it for plan-continuity regularization (the old hidden
  /// prev_variants_ state, now caller-owned).
  const AllocationPlan* previous_plan = nullptr;
  /// Workers currently usable for placement. 0 (the default) means "the full
  /// configured cluster"; the failure-recovery path sets it to the surviving
  /// worker count so re-plans after a crash never place instances on dead
  /// hardware. Strategies clamp their capacity to min(cluster_size, this).
  int available_workers = 0;
};

/// Effective placement capacity for one plan() call: the configured cluster
/// shrunk to the request's surviving-worker count (never below one worker
/// per task, so every stage keeps a host even in deep degradation).
inline int effective_cluster_size(int cluster_size, const PlanRequest& req,
                                  int num_tasks) {
  if (req.available_workers <= 0 || req.available_workers >= cluster_size) {
    return cluster_size;
  }
  return req.available_workers > num_tasks ? req.available_workers : num_tasks;
}

/// RAII capacity override for strategy plan() bodies: shrinks the strategy's
/// configured cluster_size to the request's surviving-worker count for the
/// duration of one solve, restoring it on exit. With available_workers unset
/// this stores the same value back — a strict no-op, so fault-free plans are
/// bit-identical to pre-fault-subsystem behavior.
class ScopedClusterCapacity {
 public:
  ScopedClusterCapacity(int* slot, const PlanRequest& req, int num_tasks)
      : slot_(slot), saved_(*slot) {
    *slot = effective_cluster_size(saved_, req, num_tasks);
  }
  ~ScopedClusterCapacity() { *slot_ = saved_; }
  ScopedClusterCapacity(const ScopedClusterCapacity&) = delete;
  ScopedClusterCapacity& operator=(const ScopedClusterCapacity&) = delete;

 private:
  int* slot_;
  int saved_;
};

/// Solve breakdown for one allocation step ("hardware" / "accuracy" /
/// "overload", §4.1) across every budget split attempted for it.
struct StepSolve {
  std::string step;
  double wall_s = 0.0;
  int splits_attempted = 0;
  int splits_feasible = 0;
  /// Solver work spent in this step only.
  SolverStats solver;
  /// True for the step whose plan was returned.
  bool selected = false;
};

/// Result of one plan() call: the plan itself plus the per-step solve
/// accounting (aggregate solver counters also ride on plan.solver).
struct PlanResult {
  AllocationPlan plan;
  /// One entry per allocation step attempted, in execution order. Non-MILP
  /// strategies report a single synthetic step.
  std::vector<StepSolve> steps;
  /// Aggregate over steps; equals plan.solver.
  SolverStats solver;
  /// Echo of PlanRequest::epoch.
  int epoch = 0;
};

/// Allocation strategy interface: Loki's MILP allocator and the InferLine /
/// Proteus baselines all implement this, so the runtime and benches can swap
/// them freely. Strategies are constructed by name through StrategyRegistry
/// (see serving/strategy_registry.hpp); name() is the registry key and the
/// single source of truth for figures, CSVs, and test expectations.
class AllocationStrategy {
 public:
  virtual ~AllocationStrategy() = default;

  /// Produces a plan for one control epoch. The request carries the demand
  /// estimate, multiplicative-factor estimates, observed per-task arrivals,
  /// time/epoch bookkeeping, and a view of the previously applied plan.
  virtual PlanResult plan(const PlanRequest& request) = 0;

  virtual std::string name() const = 0;

  /// Deprecated positional shim over plan() for pre-PlanRequest call sites.
  /// Maintains its own epoch counter and previous-plan copy so repeated
  /// calls behave like consecutive control epochs (matching the old
  /// implicit prev_variants_ continuity). New code should build a
  /// PlanRequest and call plan() directly.
  AllocationPlan allocate(double demand_qps,
                          const pipeline::MultFactorTable& mult);

 private:
  // State for the allocate() deprecation shim only.
  AllocationPlan shim_prev_plan_;
  bool shim_has_prev_ = false;
  int shim_epochs_ = 0;
};

}  // namespace loki::serving
