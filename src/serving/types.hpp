// Shared types for the serving layer: resource-allocation plans and the
// strategy interface implemented by Loki and the two baselines.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/paths.hpp"

namespace loki::solver {
struct MilpSolution;
}  // namespace loki::solver

namespace loki::serving {

/// Which regime produced the plan (§4: hardware scaling first, accuracy
/// scaling when the cluster is exhausted, overload when even the cheapest
/// variants cannot meet demand).
enum class ScalingMode { kHardware, kAccuracy, kOverload };

std::string to_string(ScalingMode m);

/// One instance group of the plan: `replicas` workers all hosting variant
/// `variant` of task `task`, configured with maximum batch size `batch`.
struct InstanceConfig {
  int task = -1;
  int variant = -1;
  int batch = 1;
  int replicas = 0;
};

/// Fraction of a sink's queries assigned to one augmented-graph path
/// (the c(p) of the MILP).
struct PathFlow {
  pipeline::VariantPath path;
  double fraction = 0.0;
};

/// Aggregated branch-and-bound counters over every MILP solved while
/// producing one plan (all budget splits, all allocation steps). Runtime
/// diagnostics only — not serialized by plan_io. Read against
/// bench/tab_runtime_overhead and bench/abl_solver for regression tracking.
struct SolverStats {
  int milp_solves = 0;           // BranchAndBound::solve invocations
  int nodes_explored = 0;        // nodes whose LP relaxation was solved
  int nodes_pruned = 0;          // nodes discarded before any LP work
  int lp_iterations = 0;         // simplex pivots + bound flips, all nodes
  int lp_phase1_iterations = 0;  // pivots spent restoring feasibility
  int warm_start_hits = 0;       // node LPs resolved from a reused basis
  int cold_solves = 0;           // node LPs that ran a full two-phase solve

  SolverStats& operator+=(const SolverStats& o);
  /// Folds one branch-and-bound result into the tally (bumps milp_solves).
  void add(const solver::MilpSolution& sol);
};

/// Output of the Resource Manager (§4.1): model variants to host, their
/// replication factors and max batch sizes, plus the planned path flows the
/// Load Balancer turns into routing tables.
struct AllocationPlan {
  ScalingMode mode = ScalingMode::kHardware;
  std::vector<InstanceConfig> instances;
  std::vector<PathFlow> flows;

  /// Planned system accuracy (averaged across sinks; Eq. 12 objective).
  double expected_accuracy = 1.0;
  /// Fraction of incoming demand the plan serves (< 1 only in overload).
  double served_fraction = 1.0;
  int servers_used = 0;
  double demand_qps = 0.0;
  /// Runtime latency budget per (task, variant): 2x the configured batch
  /// execution latency (the SLO/2 queueing rule of §4.1 unwound for
  /// runtime checks; §5.2 uses these budgets for early dropping).
  std::map<std::pair<int, int>, double> latency_budget_s;
  double solve_time_s = 0.0;
  /// Solver work behind this plan (zero for non-MILP strategies).
  SolverStats solver;
  bool feasible = true;

  int total_replicas() const;
  /// Replicas hosting (task, variant) summed over batch configs.
  int replicas_of(int task, int variant) const;
};

/// Allocation strategy interface: Loki's MILP allocator and the InferLine /
/// Proteus baselines all implement this, so the runtime and benches can swap
/// them freely.
class AllocationStrategy {
 public:
  virtual ~AllocationStrategy() = default;

  /// Produces a plan for the given demand estimate and the current
  /// multiplicative-factor estimates (observed at runtime, §4.2).
  virtual AllocationPlan allocate(double demand_qps,
                                  const pipeline::MultFactorTable& mult) = 0;

  virtual std::string name() const = 0;

  /// Per-task demand observations (QPS arriving at each task), which
  /// pipeline-agnostic strategies (Proteus) use instead of the pipeline
  /// structure. Called by the controller before allocate(). Default: ignore.
  virtual void observe_task_demand(const std::vector<double>& /*qps*/) {}
};

}  // namespace loki::serving
