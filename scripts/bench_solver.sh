#!/usr/bin/env bash
# Solver benchmark runner: builds the bench targets in Release, runs
# abl_solver and tab_runtime_overhead, and merges their google-benchmark
# JSON reports into BENCH_solver.json (per-op wall time in ns plus the
# pivot/node/warm-start counters each benchmark exports). Also runs the
# abl_allocator cross-epoch warm-start ablation, which writes
# BENCH_allocator.json (steady-state re-plan latency, epoch warm-hit rate,
# warm-vs-cold pivot ratio, and the plans-bit-identical check) and fails the
# run if warm and cold plans ever diverge.
#
# Usage: scripts/bench_solver.sh [--quick] [output.json]
#   --quick   run with --benchmark_min_time=0.01 (CI smoke; noisy numbers)
set -euo pipefail

cd "$(dirname "$0")/.."

quick=0
out_json="BENCH_solver.json"
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    *.json) out_json="$arg" ;;
    *) echo "usage: $0 [--quick] [output.json]" >&2; exit 2 ;;
  esac
done

# BENCH_BUILD_DIR lets CI reuse its existing Release tree instead of
# configuring a second one.
build_dir="${BENCH_BUILD_DIR:-build-release}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
if [[ ! -d "$build_dir" ]]; then
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
if ! cmake --build "$build_dir" -j "$jobs" \
      --target abl_solver tab_runtime_overhead abl_allocator 2>/dev/null; then
  echo "bench targets unavailable (Google Benchmark not installed?)" >&2
  exit 3
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# google-benchmark >= 1.8 wants a unit suffix on --benchmark_min_time and
# deprecates the bare double; older releases reject the suffix outright.
# Probe which spelling this libbenchmark accepts.
min_time=""
if [[ "$quick" == 1 ]]; then
  if "$build_dir/abl_solver" --benchmark_min_time=0.01s \
       --benchmark_list_tests >/dev/null 2>&1; then
    min_time="--benchmark_min_time=0.01s"
  else
    min_time="--benchmark_min_time=0.01"
  fi
fi

# LOKI_MILP_NO_TIME_LIMIT pins branch-and-bound to its deterministic node
# budget so pivot/node counters are reproducible across hosts.
export LOKI_MILP_NO_TIME_LIMIT=1
"$build_dir/abl_solver" ${min_time} \
  --benchmark_out="$tmpdir/abl_solver.json" --benchmark_out_format=json
"$build_dir/tab_runtime_overhead" ${min_time} \
  --benchmark_filter='BM_RawSimplex|BM_ResourceManagerMilp|BM_ResourceManagerSteadyReplan' \
  --benchmark_out="$tmpdir/tab_runtime_overhead.json" \
  --benchmark_out_format=json

# Cross-epoch warm-start ablation -> BENCH_allocator.json next to the solver
# report. Non-zero exit means warm and cold plans diverged — a correctness
# failure, not a perf regression.
alloc_json="$(dirname "$out_json")/BENCH_allocator.json"
[[ "$alloc_json" == */* ]] || alloc_json="BENCH_allocator.json"
"$build_dir/abl_allocator" --json="$alloc_json" > "$tmpdir/abl_allocator.log" \
  || { echo "abl_allocator failed (warm/cold plan divergence?)" >&2;
       tail -n 20 "$tmpdir/abl_allocator.log" >&2; exit 4; }
tail -n 12 "$tmpdir/abl_allocator.log"

python3 - "$tmpdir" "$out_json" <<'PYEOF'
import json
import sys

tmpdir, out_path = sys.argv[1], sys.argv[2]
merged = {"benchmarks": []}
for name in ("abl_solver", "tab_runtime_overhead"):
    with open(f"{tmpdir}/{name}.json") as f:
        report = json.load(f)
    merged.setdefault("context", report.get("context", {}))
    for b in report.get("benchmarks", []):
        entry = {
            "binary": name,
            "name": b["name"],
            "real_time_ns": b["real_time"] * {"ns": 1, "us": 1e3,
                                              "ms": 1e6, "s": 1e9}[b["time_unit"]],
        }
        for key, value in b.items():
            # google-benchmark flattens user counters into the benchmark
            # object; pick up the solver counters by name.
            if key in ("pivots", "bound_flips", "pivots_per_resolve",
                       "warm_fraction", "lp_pivots", "phase1_pivots",
                       "nodes", "warm_hits", "cold_solves",
                       "epoch_warm_hits", "epoch_cache_skips", "milp_solves",
                       "devex_resets", "presolve_rows_removed",
                       "presolve_cols_removed", "near_warm_hits"):
                entry[key] = value
        merged["benchmarks"].append(entry)
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
print(f"wrote {out_path} ({len(merged['benchmarks'])} benchmarks)")
PYEOF

scripts/stamp_bench_version.py "$out_json"
