#!/usr/bin/env bash
# Observability overhead runner: builds bm_obs in Release, runs the BM_Obs*
# suite (hot-path counter/histogram adds, registry snapshot cost, the
# 96-worker serving e2e epoch with tracing off vs on, and the paired
# overhead gate), writes BENCH_obs.json (google-benchmark format plus the
# top-level schema "version"), and gates the result with
# check_bench_regression.py --suite obs:
#   * BM_ObsOverheadGate.bit_identical must be 1 — tracing on/off left every
#     simulation metric bit-identical (the passivity invariant);
#   * BM_ObsOverheadGate.overhead_frac (paired tracing-on vs tracing-off
#     wall time, host drift hits both arms) must stay within 3%;
#   * per-benchmark items_per_second vs bench/BENCH_obs_baseline.json with
#     the same wide slack as the other wall-clock suites.
#
# Usage: scripts/bench_obs.sh [--quick] [--rebaseline] [output.json]
#   --quick       one repetition, short min-time (CI smoke; noisy numbers)
#   --rebaseline  copy the fresh report over the committed baseline instead
#                 of gating against it
set -euo pipefail

cd "$(dirname "$0")/.."

quick=0
rebaseline=0
out_json="BENCH_obs.json"
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    --rebaseline) rebaseline=1 ;;
    *.json) out_json="$arg" ;;
    *) echo "usage: $0 [--quick] [--rebaseline] [output.json]" >&2; exit 2 ;;
  esac
done

build_dir="${BENCH_BUILD_DIR:-build-release}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
if [[ ! -d "$build_dir" ]]; then
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
if ! cmake --build "$build_dir" -j "$jobs" --target bm_obs 2>/dev/null
then
  echo "bench targets unavailable (Google Benchmark not installed?)" >&2
  exit 3
fi

bench_args=(--benchmark_filter='^BM_Obs'
            --benchmark_out="$out_json" --benchmark_out_format=json)
if [[ "$quick" == 1 ]]; then
  # google-benchmark >= 1.8 wants a unit suffix on --benchmark_min_time and
  # deprecates the bare double; older releases reject the suffix outright.
  if "$build_dir/bm_obs" --benchmark_min_time=0.01s \
       --benchmark_list_tests >/dev/null 2>&1; then
    bench_args+=(--benchmark_min_time=0.01s)
  else
    bench_args+=(--benchmark_min_time=0.01)
  fi
else
  bench_args+=(--benchmark_repetitions=3
               --benchmark_report_aggregates_only=true)
fi

# The MILP node budget must be deterministic so the paired epochs solve the
# same plans in both arms.
LOKI_MILP_NO_TIME_LIMIT=1 "$build_dir/bm_obs" "${bench_args[@]}"

scripts/stamp_bench_version.py "$out_json"

if [[ "$rebaseline" == 1 ]]; then
  cp "$out_json" bench/BENCH_obs_baseline.json
  echo "rebaselined bench/BENCH_obs_baseline.json from $out_json"
else
  # The overhead + passivity checks run even on --quick (they are about
  # ratios and exact metric equality, not absolute wall time); only the
  # cross-run throughput comparison is skipped for quick runs.
  gate_args=(--suite obs)
  if [[ "$quick" == 1 ]]; then
    gate_args+=(--max-regress 1000000)
    echo "(--quick run: throughput floor disabled; gating overhead only)"
  fi
  python3 scripts/check_bench_regression.py "$out_json" "${gate_args[@]}"
fi
