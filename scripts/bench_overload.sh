#!/usr/bin/env bash
# Graceful-degradation bench runner: builds bm_overload in Release, runs
# the BM_Overload* suite (the tiered flash-crowd scenario with a mid-burst
# crash, and the paired armed-vs-off passivity gate), writes
# BENCH_overload.json (google-benchmark format plus the top-level schema
# "version"), and gates the result with check_bench_regression.py
# --suite overload:
#   * BM_OverloadGate.bit_identical must be 1 — tiers armed with
#     unreachable watermarks + a fallback chain with no deadline left every
#     simulation metric bit-identical to the default run (the
#     degradation-off passivity invariant);
#   * the BM_OverloadTiered simulated outcomes are deterministic under the
#     pinned seed and gated as absolute invariants: accounting_exact == 1
#     (per-tier arrivals == completions + drops), shed_tier0 == 0
#     (priority-aware shedding falls exclusively on tiers 1-2), and
#     tier0_attainment >= 0.99 (the strict tier rides out a 2x flash crowd
#     plus a mid-burst worker crash);
#   * per-benchmark items_per_second vs the baseline with the same wide
#     slack as the other wall-clock suites.
#
# Usage: scripts/bench_overload.sh [--quick] [--rebaseline] [output.json]
#   --quick       one repetition, short min-time (CI smoke; noisy numbers)
#   --rebaseline  copy the fresh report over the committed baseline instead
#                 of gating against it
set -euo pipefail

cd "$(dirname "$0")/.."

quick=0
rebaseline=0
out_json="BENCH_overload.json"
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    --rebaseline) rebaseline=1 ;;
    *.json) out_json="$arg" ;;
    *) echo "usage: $0 [--quick] [--rebaseline] [output.json]" >&2; exit 2 ;;
  esac
done

build_dir="${BENCH_BUILD_DIR:-build-release}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
if [[ ! -d "$build_dir" ]]; then
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
if ! cmake --build "$build_dir" -j "$jobs" --target bm_overload 2>/dev/null
then
  echo "bench targets unavailable (Google Benchmark not installed?)" >&2
  exit 3
fi

bench_args=(--benchmark_filter='^BM_Overload'
            --benchmark_out="$out_json" --benchmark_out_format=json)
if [[ "$quick" == 1 ]]; then
  # google-benchmark >= 1.8 wants a unit suffix on --benchmark_min_time and
  # deprecates the bare double; older releases reject the suffix outright.
  if "$build_dir/bm_overload" --benchmark_min_time=0.01s \
       --benchmark_list_tests >/dev/null 2>&1; then
    bench_args+=(--benchmark_min_time=0.01s)
  else
    bench_args+=(--benchmark_min_time=0.01)
  fi
else
  bench_args+=(--benchmark_repetitions=3
               --benchmark_report_aggregates_only=true)
fi

# Deterministic MILP node budget: both gate arms must solve identical plans.
LOKI_MILP_NO_TIME_LIMIT=1 "$build_dir/bm_overload" "${bench_args[@]}"

scripts/stamp_bench_version.py "$out_json"

if [[ "$rebaseline" == 1 ]]; then
  cp "$out_json" bench/BENCH_overload_baseline.json
  echo "rebaselined bench/BENCH_overload_baseline.json from $out_json"
else
  # Passivity + simulated-outcome checks run even on --quick (they compare
  # exact metric equality and deterministic per-tier outcomes, not wall
  # time); only the cross-run throughput comparison is skipped.
  gate_args=(--suite overload)
  if [[ "$quick" == 1 ]]; then
    gate_args+=(--max-regress 1000000)
    echo "(--quick run: throughput floor disabled; gating passivity and"
    echo " simulated per-tier outcomes only)"
  fi
  python3 scripts/check_bench_regression.py "$out_json" "${gate_args[@]}"
fi
