#!/usr/bin/env python3
"""Gate on benchmark regressions.

Two suites:

  solver (default)  - compares the cold 3-step allocation pivot total of a
      fresh BENCH_solver.json (the sum of lp_pivots over the
      BM_ResourceManagerMilp cases) against the checked-in baseline and
      fails when it regressed by more than the allowed fraction. Pivot
      counters are deterministic (seeded models, deterministic node budgets
      under LOKI_MILP_NO_TIME_LIMIT=1), so unlike wall times they are
      comparable across hosts and safe to gate CI on.

  dataplane         - compares per-benchmark items_per_second of the
      BM_DataPlane* throughput suite (BENCH_dataplane.json, raw
      google-benchmark format) against bench/BENCH_dataplane_baseline.json.
      Wall-clock throughput is host- and load-sensitive (the baseline host
      is a shared 1-vCPU VM where real time can run several times CPU
      time), so the default slack is much wider than the solver gate's and
      the baseline should be regenerated (scripts/bench_dataplane.sh) when
      moving to different hardware.

  serving           - same throughput gate over the BM_Serving* suite
      (routing draws, forward hops, the 96-worker e2e epoch) against
      bench/BENCH_serving_baseline.json. Run via scripts/bench_serving.sh.

Usage: check_bench_regression.py CANDIDATE.json
                                 [--suite solver|dataplane|serving]
                                 [--baseline PATH] [--max-regress FRACTION]
Exit codes: 0 ok, 1 regression, 2 usage/malformed input.
"""

import argparse
import json
import sys

COLD_BENCH_PREFIX = "BM_ResourceManagerMilp/"
DATAPLANE_PREFIX = "BM_DataPlane"
SERVING_PREFIX = "BM_Serving"


def cold_pivot_total(report_path):
    with open(report_path) as f:
        report = json.load(f)
    total = 0.0
    cases = 0
    for bench in report.get("benchmarks", []):
        if not bench.get("name", "").startswith(COLD_BENCH_PREFIX):
            continue
        if "lp_pivots" not in bench:
            raise ValueError(f"{bench['name']} has no lp_pivots counter")
        total += bench["lp_pivots"]
        cases += 1
    if cases == 0:
        raise ValueError(
            f"no {COLD_BENCH_PREFIX}* benchmarks in {report_path}")
    return total, cases


def suite_throughputs(report_path, prefix):
    """name -> items_per_second for each benchmark matching `prefix`.

    Prefers the *_mean aggregate when the report was generated with
    repetitions; falls back to the plain entry otherwise. The aggregate
    suffix is stripped so candidate and baseline match regardless of how
    either was generated.
    """
    with open(report_path) as f:
        report = json.load(f)
    plain = {}
    means = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name", "")
        if not name.startswith(prefix):
            continue
        if "items_per_second" not in bench:
            continue  # aggregate rows like *_cv carry relative values
        if name.endswith("_mean"):
            means[name[:-len("_mean")]] = bench["items_per_second"]
        elif bench.get("run_type", "iteration") == "iteration":
            plain[name] = bench["items_per_second"]
    merged = dict(plain)
    merged.update(means)  # aggregates win over per-repetition rows
    if not merged:
        raise ValueError(
            f"no {prefix}* benchmarks with items_per_second "
            f"in {report_path}")
    return merged


def run_solver_gate(args):
    base_total, base_cases = cold_pivot_total(args.baseline)
    cand_total, cand_cases = cold_pivot_total(args.candidate)
    limit = base_total * (1.0 + args.max_regress)
    verdict = "OK" if cand_total <= limit else "REGRESSION"
    print(f"cold 3-step allocation pivots: candidate {cand_total:.0f} "
          f"({cand_cases} cases) vs baseline {base_total:.0f} "
          f"({base_cases} cases); limit {limit:.0f} "
          f"[+{100 * args.max_regress:.0f}%] -> {verdict}")
    if cand_total > limit:
        print("If this increase is intended (e.g. a deliberate trade-off), "
              "regenerate the baseline with scripts/bench_solver.sh and "
              "commit bench/BENCH_solver_baseline.json.", file=sys.stderr)
        return 1
    return 0


def run_throughput_gate(args, prefix, rebaseline_hint):
    base = suite_throughputs(args.baseline, prefix)
    cand = suite_throughputs(args.candidate, prefix)
    failed = []
    for name in sorted(base):
        if name not in cand:
            print(f"{name}: MISSING from candidate", file=sys.stderr)
            failed.append(name)
            continue
        floor = base[name] * (1.0 - args.max_regress)
        ok = cand[name] >= floor
        print(f"{name}: candidate {cand[name]:,.0f} items/s vs baseline "
              f"{base[name]:,.0f}; floor {floor:,.0f} "
              f"[-{100 * args.max_regress:.0f}%] -> "
              f"{'OK' if ok else 'REGRESSION'}")
        if not ok:
            failed.append(name)
    if failed:
        print(f"Throughput regressed. If the drop is intended or the host "
              f"changed, regenerate the baseline with {rebaseline_hint} "
              f"and commit it.", file=sys.stderr)
        return 1
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("candidate", help="freshly generated benchmark JSON")
    ap.add_argument("--suite", choices=("solver", "dataplane", "serving"),
                    default="solver")
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON (default depends on --suite)")
    ap.add_argument("--max-regress", type=float, default=None,
                    help="allowed fractional regression over baseline "
                         "(default: solver 0.20, dataplane/serving 0.35)")
    args = ap.parse_args()
    if args.baseline is None:
        args.baseline = {
            "solver": "bench/BENCH_solver_baseline.json",
            "dataplane": "bench/BENCH_dataplane_baseline.json",
            "serving": "bench/BENCH_serving_baseline.json",
        }[args.suite]
    if args.max_regress is None:
        args.max_regress = 0.20 if args.suite == "solver" else 0.35

    try:
        if args.suite == "solver":
            return run_solver_gate(args)
        if args.suite == "serving":
            return run_throughput_gate(
                args, SERVING_PREFIX, "scripts/bench_serving.sh --rebaseline")
        return run_throughput_gate(
            args, DATAPLANE_PREFIX, "scripts/bench_dataplane.sh --rebaseline")
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
