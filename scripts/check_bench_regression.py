#!/usr/bin/env python3
"""Gate on solver pivot-count regressions.

Compares the cold 3-step allocation pivot total of a fresh BENCH_solver.json
(the sum of lp_pivots over the BM_ResourceManagerMilp cases) against the
checked-in baseline and fails when it regressed by more than the allowed
fraction. Pivot counters are deterministic (seeded models, deterministic
node budgets under LOKI_MILP_NO_TIME_LIMIT=1), so unlike wall times they are
comparable across hosts and safe to gate CI on.

Usage: check_bench_regression.py CANDIDATE.json [--baseline PATH]
                                 [--max-regress FRACTION]
Exit codes: 0 ok, 1 regression, 2 usage/malformed input.
"""

import argparse
import json
import sys

COLD_BENCH_PREFIX = "BM_ResourceManagerMilp/"


def cold_pivot_total(report_path):
    with open(report_path) as f:
        report = json.load(f)
    total = 0.0
    cases = 0
    for bench in report.get("benchmarks", []):
        if not bench.get("name", "").startswith(COLD_BENCH_PREFIX):
            continue
        if "lp_pivots" not in bench:
            raise ValueError(f"{bench['name']} has no lp_pivots counter")
        total += bench["lp_pivots"]
        cases += 1
    if cases == 0:
        raise ValueError(
            f"no {COLD_BENCH_PREFIX}* benchmarks in {report_path}")
    return total, cases


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("candidate", help="freshly generated BENCH_solver.json")
    ap.add_argument("--baseline", default="bench/BENCH_solver_baseline.json")
    ap.add_argument("--max-regress", type=float, default=0.20,
                    help="allowed fractional increase over baseline")
    args = ap.parse_args()

    try:
        base_total, base_cases = cold_pivot_total(args.baseline)
        cand_total, cand_cases = cold_pivot_total(args.candidate)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: {e}", file=sys.stderr)
        return 2

    limit = base_total * (1.0 + args.max_regress)
    verdict = "OK" if cand_total <= limit else "REGRESSION"
    print(f"cold 3-step allocation pivots: candidate {cand_total:.0f} "
          f"({cand_cases} cases) vs baseline {base_total:.0f} "
          f"({base_cases} cases); limit {limit:.0f} "
          f"[+{100 * args.max_regress:.0f}%] -> {verdict}")
    if cand_total > limit:
        print("If this increase is intended (e.g. a deliberate trade-off), "
              "regenerate the baseline with scripts/bench_solver.sh and "
              "commit bench/BENCH_solver_baseline.json.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
