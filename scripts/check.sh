#!/usr/bin/env bash
# Local wrapper mirroring CI: build + test Release and Debug+ASan/UBSan.
# Usage: scripts/check.sh [--release-only|--asan-only]
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
run_release=1
run_asan=1
case "${1:-}" in
  --release-only) run_asan=0 ;;
  --asan-only) run_release=0 ;;
  "") ;;
  *) echo "usage: $0 [--release-only|--asan-only]" >&2; exit 2 ;;
esac

build_and_test() {
  local name="$1"; shift
  local dir="$1"; shift
  echo "==> [$name] configure"
  cmake -B "$dir" -S . "$@"
  echo "==> [$name] build"
  cmake --build "$dir" -j "$jobs"
  echo "==> [$name] test"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

if [[ "$run_release" == 1 ]]; then
  build_and_test release build-release -DCMAKE_BUILD_TYPE=Release
fi
if [[ "$run_asan" == 1 ]]; then
  build_and_test asan build-asan -DCMAKE_BUILD_TYPE=Debug \
    -DLOKI_SANITIZE=ON -DLOKI_WERROR=ON
fi
echo "==> all checks passed"
