#!/usr/bin/env python3
"""Stamp a bench JSON report with the gate schema version.

google-benchmark has no hook for custom top-level fields, so every
bench_*.sh runs this after generating its report. check_bench_regression.py
refuses candidate or baseline reports whose "version" does not match its
SCHEMA_VERSION, so renamed counters / changed units fail loudly instead of
being compared across meanings.

Usage: stamp_bench_version.py REPORT.json [REPORT2.json ...]
"""

import json
import sys

SCHEMA_VERSION = 1


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in sys.argv[1:]:
        with open(path) as f:
            report = json.load(f)
        report["version"] = SCHEMA_VERSION
        with open(path, "w") as f:
            json.dump(report, f, indent=1)
            f.write("\n")
        print(f"stamped {path} with bench schema version {SCHEMA_VERSION}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
