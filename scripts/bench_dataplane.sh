#!/usr/bin/env bash
# Data-plane throughput runner: builds bm_dataplane in Release, runs the
# BM_DataPlane* suite (event-core arrival ingest, serving forward fan-out,
# full e2e epoch) with repetitions, writes BENCH_dataplane.json (raw
# google-benchmark format), and gates the result against
# bench/BENCH_dataplane_baseline.json via check_bench_regression.py
# --suite dataplane.
#
# Wall-clock throughput is load-sensitive: on shared hosts real time can run
# several times CPU time, which is why the dataplane gate ships with a wide
# default slack (-35%). Rebaseline when moving hardware.
#
# Usage: scripts/bench_dataplane.sh [--quick] [--rebaseline] [output.json]
#   --quick       one repetition, short min-time (CI smoke; noisy numbers)
#   --rebaseline  copy the fresh report over the committed baseline instead
#                 of gating against it
set -euo pipefail

cd "$(dirname "$0")/.."

quick=0
rebaseline=0
out_json="BENCH_dataplane.json"
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    --rebaseline) rebaseline=1 ;;
    *.json) out_json="$arg" ;;
    *) echo "usage: $0 [--quick] [--rebaseline] [output.json]" >&2; exit 2 ;;
  esac
done

build_dir="${BENCH_BUILD_DIR:-build-release}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
if [[ ! -d "$build_dir" ]]; then
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
if ! cmake --build "$build_dir" -j "$jobs" --target bm_dataplane 2>/dev/null
then
  echo "bench targets unavailable (Google Benchmark not installed?)" >&2
  exit 3
fi

# The binary also hosts the BM_Serving* suite (scripts/bench_serving.sh);
# filter to this suite's prefix so the two runs stay disjoint.
bench_args=(--benchmark_filter='^BM_DataPlane'
            --benchmark_out="$out_json" --benchmark_out_format=json)
if [[ "$quick" == 1 ]]; then
  # google-benchmark >= 1.8 wants a unit suffix on --benchmark_min_time and
  # deprecates the bare double; older releases reject the suffix outright.
  if "$build_dir/bm_dataplane" --benchmark_min_time=0.01s \
       --benchmark_list_tests >/dev/null 2>&1; then
    bench_args+=(--benchmark_min_time=0.01s)
  else
    bench_args+=(--benchmark_min_time=0.01)
  fi
else
  bench_args+=(--benchmark_repetitions=3
               --benchmark_report_aggregates_only=true)
fi

"$build_dir/bm_dataplane" "${bench_args[@]}"

scripts/stamp_bench_version.py "$out_json"

if [[ "$rebaseline" == 1 ]]; then
  cp "$out_json" bench/BENCH_dataplane_baseline.json
  echo "rebaselined bench/BENCH_dataplane_baseline.json from $out_json"
elif [[ "$quick" == 1 ]]; then
  echo "(--quick run: skipping the regression gate; numbers too noisy)"
else
  python3 scripts/check_bench_regression.py "$out_json" --suite dataplane
fi
